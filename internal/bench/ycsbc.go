package bench

import (
	"fmt"

	"cclbtree"
	"cclbtree/internal/baselines/cclidx"
	"cclbtree/internal/workload"
)

// readScalingSweep is the YCSB-C thread sweep. It stops at 8 because
// the experiment's point is the read path's lock behavior, not raw
// scaling: the LockedReads ablation pays a per-acquisition handoff
// cost that grows with the worker count, so by 8 threads the lock-free
// path's advantage is fully developed. This is also the scale the CI
// perf gate pins (scripts/perf_baseline_ycsbc.json).
var readScalingSweep = []int{1, 2, 4, 8}

// YCSBC runs the read-scaling experiment: a read-only YCSB-C workload
// (Zipfian 0.99) swept over thread counts, once on the default
// lock-free optimistic read path and once with Config.LockedReads —
// the ablation that routes every Get/Scan through the leaf version
// lock the way the pre-seqlock tree did. The two series share warm
// set, access stream and seed, so the gap is purely the read
// protocol: seqlock validation (two DRAM reads per attempt, retried
// on conflict) versus lock handoff that serializes readers behind
// cacheline ping-pong. ReadRetries per series shows how often
// optimistic validation actually failed.
func YCSBC(s Scale) ([]*Table, error) {
	sweep := s.Threads
	s = s.withDefaults()
	if len(sweep) == 0 {
		sweep = readScalingSweep
	}

	variants := []struct {
		name string
		cfg  cclbtree.Config
	}{
		{"CCL-BTree", cclbtree.Config{ChunkBytes: 256 << 10, Metrics: true}},
		{"CCL-locked", cclbtree.Config{ChunkBytes: 256 << 10, Metrics: true, LockedReads: true}},
	}

	tab := &Table{
		Title:  "YCSB-C read scaling: lock-free optimistic reads vs LockedReads ablation (Zipfian 0.99, 100% read)",
		Header: []string{"threads", "index", "Mop/s", "p50(ns)", "p99(ns)", "read retries"},
		Note:   "read retries = optimistic passes invalidated by a concurrent writer and retried",
	}
	mops := map[string]map[int]float64{}
	for _, v := range variants {
		mops[v.name] = map[int]float64{}
	}
	for _, th := range sweep {
		for _, v := range variants {
			pool := NewPool()
			idx, err := cclidx.Factory(v.name, v.cfg)(pool)
			if err != nil {
				return nil, err
			}
			z := workload.NewZipf(uint64(s.Warm), 0.99)
			res, err := Run(pool, idx, Spec{
				Threads: th,
				Warm:    s.Warm,
				Ops:     s.Ops,
				Mix:     workload.Mix{Read: 1.0},
				Access:  func(int) workload.Access { return z },
				Latency: true,
				Seed:    s.Seed,
			})
			if err != nil {
				idx.Close()
				return nil, fmt.Errorf("%s/t%d: %w", v.name, th, err)
			}
			retries := idx.(*cclidx.Tree).DB().Counters().ReadRetries
			idx.Close()
			mops[v.name][th] = res.Mops()
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprint(th), v.name, f2(res.Mops()),
				fmt.Sprint(res.Pct(50)), fmt.Sprint(res.Pct(99)),
				fmt.Sprint(retries),
			})
		}
	}

	last := sweep[len(sweep)-1]
	if locked := mops["CCL-locked"][last]; locked > 0 {
		tab.Note += fmt.Sprintf("; lock-free is %.1fx locked at %d threads",
			mops["CCL-BTree"][last]/locked, last)
	}
	return []*Table{tab}, nil
}
