package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"cclbtree"
	"cclbtree/internal/pmem"
	"cclbtree/internal/workload"
)

// runVarCCL measures CCL-BTree's native variable-size KV insert path
// (Fig 15b): keys and values are 8–128 B byte strings behind
// indirection pointers, compared by content.
func runVarCCL(s Scale, threads, warm, ops int) (float64, error) {
	pool := NewPool()
	db, err := cclbtree.NewOnPool(pool, cclbtree.Config{VarKV: true})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	sizer := workload.VarSizer{Min: 8, Max: 128}
	workers := make([]*cclbtree.Session, threads)
	for i := range workers {
		workers[i] = db.Session(i % pool.Sockets())
	}
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			w := workers[th]
			rng := rand.New(rand.NewSource(s.Seed + int64(th)))
			for i := th; i < warm; i += threads {
				k := sizer.Bytes(rng, loadKey(nil, i))
				if err := w.PutVar(k, sizer.Bytes(rng, uint64(i))); err != nil {
					errs[th] = err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	start := make([]int64, threads)
	for i, w := range workers {
		start[i] = w.Thread().Now()
	}
	perThread := ops / threads
	if perThread == 0 {
		perThread = 1
	}
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			w := workers[th]
			rng := rand.New(rand.NewSource(s.Seed + 999 + int64(th)))
			cursor := warm + th
			for i := 0; i < perThread; i++ {
				k := sizer.Bytes(rng, loadKey(nil, cursor))
				cursor += threads
				if err := w.PutVar(k, sizer.Bytes(rng, uint64(cursor))); err != nil {
					errs[th] = err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var elapsed int64
	for i, w := range workers {
		if d := w.Thread().Now() - start[i]; d > elapsed {
			elapsed = d
		}
	}
	if elapsed == 0 {
		elapsed = 1
	}
	return float64(perThread*threads) * 1e3 / float64(elapsed), nil
}

// Fig16 repeats the insert sweep on an eADR platform: no explicit
// flushes, persistence through cache eviction. The paper's interesting
// observation reproduces: implicit evictions are oblivious to XPLine
// locality, so eADR throughput is BELOW the ADR numbers for CCL-BTree.
func Fig16(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Fig 16: insert throughput (Mop/s) vs threads, eADR mode",
		Header: []string{"index"},
		Note:   "flushes removed; dirty lines reach media via cache eviction",
	}
	for _, th := range s.Threads {
		t.Header = append(t.Header, fmt.Sprintf("%dthr", th))
	}
	for _, f := range Indexes() {
		row := []string{""}
		for _, th := range s.Threads {
			pool := pmem.NewPool(pmem.Config{
				Sockets:        2,
				DIMMsPerSocket: 4,
				DeviceBytes:    benchDeviceBytes,
				CacheLines:     benchCacheLines,
				Mode:           pmem.EADR,
			})
			idx, err := f(pool)
			if err != nil {
				return nil, err
			}
			res, err := Run(pool, idx, Spec{
				Threads: th, Warm: s.Warm, Ops: s.Ops,
				Mix: workload.Mix{Insert: 1}, Seed: s.Seed,
			})
			name := idx.Name()
			idx.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			row[0] = name
			row = append(row, f2(res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig17 measures recovery time versus dataset size and thread count:
// the leaf-list walk plus parallel WAL replay and timestamp reset.
func Fig17(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	sizes := []int{s.Warm, 5 * s.Warm, 10 * s.Warm}
	threadCounts := []int{s.MainThreads / 2, s.MainThreads}
	t := &Table{
		Title:  "Fig 17: recovery time (ms) vs #KVs",
		Header: []string{"keys"},
		Note:   "simulated time; scaled from the paper's 100M–1000M keys",
	}
	for _, tc := range threadCounts {
		t.Header = append(t.Header, fmt.Sprintf("%d threads", tc))
	}
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%dk", n/1000)}
		for _, tc := range threadCounts {
			pool := pmem.NewPool(pmem.Config{
				Sockets:        2,
				DIMMsPerSocket: 4,
				DeviceBytes:    2 * benchDeviceBytes,
			})
			db, err := cclbtree.NewOnPool(pool, cclbtree.Config{ChunkBytes: 256 << 10})
			if err != nil {
				return nil, err
			}
			threads := s.MainThreads
			workers := make([]*cclbtree.Session, threads)
			for i := range workers {
				workers[i] = db.Session(i % pool.Sockets())
			}
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					w := workers[th]
					for i := th; i < n; i += threads {
						_ = w.Put(loadKey(nil, i), uint64(i+1))
					}
				}(th)
			}
			wg.Wait()
			db.Close()
			pool.Crash()
			_, st, err := cclbtree.OpenWithStats(pool, cclbtree.Config{}, tc)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(float64(st.VirtualNS)/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig18 reports DRAM and PM consumption after a bulk load, across
// value sizes stored through indirection pointers.
func Fig18(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	sizes := []int{8, 32, 128, 512}
	var out []*Table
	for _, metric := range []string{"DRAM MB", "PM MB"} {
		t := &Table{
			Title:  "Fig 18: " + metric + " after loading, by value size",
			Header: []string{"index", "8B", "32B", "128B", "512B"},
			Note:   fmt.Sprintf("%d keys loaded", 2*s.Warm),
		}
		out = append(out, t)
	}
	for _, f := range Indexes() {
		rowD := []string{""}
		rowP := []string{""}
		for _, sz := range sizes {
			blob := sz
			if sz == 8 {
				blob = 0 // inline 8 B values
			}
			r, err := runOne(f, Spec{
				Threads:        s.MainThreads,
				Warm:           2 * s.Warm,
				Ops:            1,
				Mix:            workload.Mix{Read: 1},
				ValueBlobBytes: blob,
				Seed:           s.Seed,
			})
			if err != nil {
				return nil, err
			}
			rowD[0] = r.Name
			rowP[0] = r.Name
			rowD = append(rowD, f2(float64(r.Res.DRAMBytes)/(1<<20)))
			rowP = append(rowP, f2(float64(r.Res.PMBytes)/(1<<20)))
		}
		out[0].Rows = append(out[0].Rows, rowD)
		out[1].Rows = append(out[1].Rows, rowP)
	}
	return out, nil
}

// Fig19 runs the insert workload over the four SOSD-like datasets at
// the maximum thread count.
func Fig19(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	threads := s.Threads[len(s.Threads)-1]
	datasets := []workload.Dataset{
		workload.DatasetAmzn, workload.DatasetOsm,
		workload.DatasetWiki, workload.DatasetFacebook,
	}
	t := &Table{
		Title:  "Fig 19: insert throughput (Mop/s) on realistic datasets",
		Header: []string{"index", "amzn", "osm", "wiki", "facebook"},
		Note:   fmt.Sprintf("%d threads; synthetic stand-ins with SOSD statistical character", threads),
	}
	keysets := map[workload.Dataset][]uint64{}
	for _, d := range datasets {
		keysets[d] = workload.Keys(d, s.Warm+s.Ops, s.Seed)
	}
	for _, f := range Indexes() {
		row := []string{""}
		for _, d := range datasets {
			r, err := runOne(f, Spec{
				Threads: threads,
				Warm:    s.Warm,
				Ops:     s.Ops,
				Mix:     workload.Mix{Insert: 1},
				Keys:    keysets[d],
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Table3Exp compares CCL-BTree with the log-structured stores: insert,
// search, and scan throughput at the main thread count (§5.5 Table 3).
func Table3Exp(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Table 3: comparison with log-structured stores (Mop/s)",
		Header: []string{"op", "RocksDB-PM", "FlatStore", "CCL-BTree"},
		Note:   fmt.Sprintf("%d threads", s.MainThreads),
	}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"Insert", workload.Mix{Insert: 1}},
		{"Search", workload.Mix{Read: 1}},
		{"Scan", workload.Mix{Scan: 1, ScanLen: s.ScanLen}},
	}
	cells := map[string][]string{}
	order := []string{}
	for _, m := range mixes {
		ops := s.Ops
		if m.name == "Scan" {
			ops = s.Ops / 10
		}
		res, err := runLineup(LogStructured(), Spec{
			Threads: s.MainThreads,
			Warm:    s.Warm,
			Ops:     ops,
			Mix:     m.mix,
			Seed:    s.Seed,
		})
		if err != nil {
			return nil, err
		}
		row := []string{m.name}
		for _, r := range res {
			row = append(row, f2(r.Res.Mops()))
		}
		cells[m.name] = row
		order = append(order, m.name)
	}
	for _, k := range order {
		t.Rows = append(t.Rows, cells[k])
	}
	return []*Table{t}, nil
}
