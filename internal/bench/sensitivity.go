package bench

import (
	"fmt"

	"cclbtree"
	"cclbtree/internal/baselines/cclidx"
	"cclbtree/internal/index"
	"cclbtree/internal/workload"
)

// Table1Exp is the Nbatch sensitivity study (§5.4 Table 1): insert and
// search throughput, media write volume, DRAM cache hits, and memory
// usage as the buffer-node capacity grows 1→5.
func Table1Exp(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title: "Table 1: sensitivity of Nbatch",
		Header: []string{
			"Nbatch", "insert Mop/s", "media write MB", "search Mop/s",
			"DRAM hits", "DRAM MB", "PM MB",
		},
		Note: fmt.Sprintf("%d threads, %d warm keys", s.MainThreads, s.Warm),
	}
	for _, nb := range []int{1, 2, 3, 4, 5} {
		f := cclidx.Factory("CCL-BTree", cclbtree.Config{Nbatch: nb, GC: cclbtree.GCOff})
		pool := NewPool()
		raw, err := f(pool)
		if err != nil {
			return nil, err
		}
		ins, err := Run(pool, raw, Spec{
			Threads: s.MainThreads, Warm: s.Warm, Ops: s.Ops,
			Mix: workload.Mix{Insert: 1}, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		srch, err := Run(pool, raw, Spec{
			Threads: s.MainThreads, Warm: 0, Ops: s.Ops,
			Mix: workload.Mix{Read: 1}, Seed: s.Seed + 1,
			Access: func(int) workload.Access {
				return workload.Uniform{N: uint64(s.Warm)}
			},
		})
		if err != nil {
			return nil, err
		}
		c := raw.(*cclidx.Tree).DB().Counters()
		dram, pm := raw.MemoryUsage()
		raw.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nb),
			f2(ins.Mops()),
			f2(float64(ins.Stats.MediaWriteBytes) / (1 << 20)),
			f2(srch.Mops()),
			fmt.Sprintf("%d", c.BufferHits),
			f2(float64(dram) / (1 << 20)),
			f2(float64(pm) / (1 << 20)),
		})
	}
	return []*Table{t}, nil
}

// Table2Exp is the THlog sensitivity study (§5.4 Table 2): the GC
// trigger threshold barely moves insert throughput but bounds the peak
// log footprint.
func Table2Exp(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Table 2: sensitivity of THlog",
		Header: []string{"THlog", "insert Mop/s", "peak log MB"},
		Note:   fmt.Sprintf("%d threads, insert workload", s.MainThreads),
	}
	for _, th := range []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35} {
		f := cclidx.Factory("CCL-BTree", cclbtree.Config{THlog: th, ChunkBytes: 64 << 10})
		pool := NewPool()
		raw, err := f(pool)
		if err != nil {
			return nil, err
		}
		res, err := Run(pool, raw, Spec{
			Threads: s.MainThreads, Warm: s.Warm, Ops: s.Ops,
			Mix: workload.Mix{Insert: 1}, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		tree := raw.(*cclidx.Tree).DB()
		tree.WaitGC()
		peak := tree.PeakLogBytes()
		raw.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", th*100),
			f2(res.Mops()),
			f2(float64(peak) / (1 << 20)),
		})
	}
	return []*Table{t}, nil
}

// Fig15a sweeps the Zipfian coefficient with a 50/50 lookup/upsert mix.
// CCL-BTree benefits from skew (more buffer hits); LB+-Tree collapses
// at 0.99 from HTM aborts (§5.4).
func Fig15a(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	coeffs := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
	t := &Table{
		Title:  "Fig 15(a): throughput (Mop/s) vs Zipfian coefficient (50% lookup / 50% upsert)",
		Header: []string{"index"},
		Note:   fmt.Sprintf("%d threads", s.MainThreads),
	}
	for _, c := range coeffs {
		t.Header = append(t.Header, fmt.Sprintf("%.2f", c))
	}
	for _, f := range Indexes() {
		row := []string{""}
		for _, c := range coeffs {
			z := workload.NewZipf(uint64(s.Warm), c)
			r, err := runOne(f, Spec{
				Threads: s.MainThreads,
				Warm:    s.Warm,
				Ops:     s.Ops,
				Mix:     workload.Mix{Read: 0.5, Update: 0.5},
				Access:  func(int) workload.Access { return z },
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig15b measures variable-size KV inserts (8–128 B keys and values).
// CCL-BTree runs in its native VarKV mode (indirection keys, comparator
// chases blobs); the baselines use the equivalent substitution of an
// 8 B routing key plus out-of-band payload blobs. DPTree and PACTree
// are omitted, as in the paper ("unable to run their code in the
// test").
func Fig15b(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	warm := s.Warm / 2
	ops := s.Ops / 2
	t := &Table{
		Title:  "Fig 15(b): variable-size KV insert throughput (Mop/s) vs threads",
		Header: []string{"index"},
		Note:   "key and value sizes random in 8–128 B",
	}
	for _, th := range s.Threads {
		t.Header = append(t.Header, fmt.Sprintf("%dthr", th))
	}

	// CCL-BTree in native VarKV mode.
	cclRow := []string{"CCL-BTree"}
	for _, th := range s.Threads {
		mops, err := runVarCCL(s, th, warm, ops)
		if err != nil {
			return nil, err
		}
		cclRow = append(cclRow, f2(mops))
	}

	lineup := []index.Factory{Indexes()[0], Indexes()[1], Indexes()[3], Indexes()[4]} // fptree, fast&fair, utree, lbtree
	for _, f := range lineup {
		row := []string{""}
		for _, th := range s.Threads {
			r, err := runOne(f, Spec{
				Threads:        th,
				Warm:           warm,
				Ops:            ops,
				Mix:            workload.Mix{Insert: 1},
				ValueBlobBytes: 68, // mean of 8–128
				Seed:           s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, cclRow)
	return []*Table{t}, nil
}

// Fig15c measures large-value inserts (64–512 B) through indirection
// pointers at the maximum thread count.
func Fig15c(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	sizes := []int{64, 128, 256, 512}
	threads := s.Threads[len(s.Threads)-1]
	t := &Table{
		Title:  "Fig 15(c): insert throughput (Mop/s) vs value size, indirection pointers",
		Header: []string{"index", "64B", "128B", "256B", "512B"},
		Note:   fmt.Sprintf("%d threads, 8 B keys", threads),
	}
	for _, f := range Indexes() {
		row := []string{""}
		for _, sz := range sizes {
			r, err := runOne(f, Spec{
				Threads:        threads,
				Warm:           s.Warm / 2,
				Ops:            s.Ops / 2,
				Mix:            workload.Mix{Insert: 1},
				ValueBlobBytes: sz,
				Seed:           s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Fig15d sweeps the dataset size at the maximum thread count.
func Fig15d(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	threads := s.Threads[len(s.Threads)-1]
	sizes := []int{s.Warm, 2 * s.Warm, 5 * s.Warm, 10 * s.Warm}
	t := &Table{
		Title:  "Fig 15(d): insert throughput (Mop/s) vs dataset size",
		Header: []string{"index"},
		Note:   fmt.Sprintf("%d threads; sizes scaled from the paper's 100M–1000M", threads),
	}
	for _, n := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%dk", n/1000))
	}
	for _, f := range Indexes() {
		row := []string{""}
		for _, n := range sizes {
			r, err := runOne(f, Spec{
				Threads: threads,
				Warm:    n,
				Ops:     s.Ops,
				Mix:     workload.Mix{Insert: 1},
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
