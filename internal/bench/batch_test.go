package bench

import "testing"

// TestBatchSpeedup gates the batch-path acceptance target at smoke
// scale: Session.Apply at batch=32 must beat per-op Put on simulated
// throughput AND on CLI amplification for the clustered-insert
// workload. The full-scale numbers live in BENCH_batch.json; this
// keeps the ordering from regressing silently.
func TestBatchSpeedup(t *testing.T) {
	s := Scale{Warm: 2000, Ops: 4000, MainThreads: 4, Seed: 1}.withDefaults()
	perOp, perOpTrig, err := runBatchInsert(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	batched, batchedTrig, err := runBatchInsert(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Mops() <= perOp.Mops() {
		t.Errorf("batch=32 throughput %.2f Mop/s not above batch=1 %.2f",
			batched.Mops(), perOp.Mops())
	}
	if batched.CLIAmp() >= perOp.CLIAmp() {
		t.Errorf("batch=32 CLI-amp %.2f not below batch=1 %.2f",
			batched.CLIAmp(), perOp.CLIAmp())
	}
	if batchedTrig >= perOpTrig {
		t.Errorf("batch=32 trigger flushes %d not below batch=1 %d",
			batchedTrig, perOpTrig)
	}
}
