package bench

import (
	"testing"

	"cclbtree"
	"cclbtree/internal/baselines/cclidx"
	"cclbtree/internal/workload"
)

// runReadOnly measures one YCSB-C point: a pure-read Zipfian workload
// at the given thread count with the given tree config.
func runReadOnly(t *testing.T, threads int, cfg cclbtree.Config) *Result {
	t.Helper()
	pool := NewPool()
	idx, err := cclidx.Factory("CCL", cfg)(pool)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	const warm = 20_000
	z := workload.NewZipf(warm, 0.99)
	res, err := Run(pool, idx, Spec{
		Threads: threads,
		Warm:    warm,
		Ops:     20_000,
		Mix:     workload.Mix{Read: 1.0},
		Access:  func(int) workload.Access { return z },
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReadScaling gates the lock-free read path's acceptance target at
// smoke scale: on read-only YCSB-C at 8 threads, the optimistic
// seqlock path must deliver at least 3x the simulated throughput of
// the LockedReads ablation. The ablation charges every read the
// modeled lock-handoff cost (cacheline transfer between contending
// workers), which is exactly the cost the seqlock protocol exists to
// avoid; if the optimistic path starts taking locks — or retrying
// pathologically — this ratio collapses.
func TestReadScaling(t *testing.T) {
	free := runReadOnly(t, 8, cclbtree.Config{ChunkBytes: 256 << 10})
	locked := runReadOnly(t, 8, cclbtree.Config{ChunkBytes: 256 << 10, LockedReads: true})
	if free.Mops() < 3*locked.Mops() {
		t.Errorf("lock-free reads %.2f Mop/s, locked %.2f: want >= 3x at 8 threads",
			free.Mops(), locked.Mops())
	}
	// Sanity: at 1 thread there is nobody to hand the lock to, so the
	// two paths must be within noise of each other — the ablation
	// models contention, not a flat tax.
	free1 := runReadOnly(t, 1, cclbtree.Config{ChunkBytes: 256 << 10})
	locked1 := runReadOnly(t, 1, cclbtree.Config{ChunkBytes: 256 << 10, LockedReads: true})
	if r := free1.Mops() / locked1.Mops(); r < 0.7 || r > 1.5 {
		t.Errorf("single-thread ratio %.2f outside [0.7, 1.5]: lock-free %.2f vs locked %.2f Mop/s",
			r, free1.Mops(), locked1.Mops())
	}
}
