package bench

import (
	"fmt"

	"cclbtree/internal/index"
	"cclbtree/internal/workload"
)

// sweepTable runs one mix across the thread sweep for a lineup,
// producing an index × threads throughput table.
func sweepTable(s Scale, title string, factories []index.Factory, mix workload.Mix, access func(int) workload.Access) (*Table, error) {
	t := &Table{Title: title, Header: []string{"index"}}
	for _, th := range s.Threads {
		t.Header = append(t.Header, fmt.Sprintf("%dthr", th))
	}
	t.Note = fmt.Sprintf("Mop/s; %d warm keys, %d ops per point", s.Warm, s.Ops)
	for _, f := range factories {
		row := []string{""}
		for _, th := range s.Threads {
			r, err := runOne(f, Spec{
				Threads: th,
				Warm:    s.Warm,
				Ops:     s.Ops,
				Mix:     mix,
				Access:  access,
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 is the §5.2 micro-benchmark: insert, update, delete, search,
// and scan throughput versus thread count for every persistent index.
// PACTree is omitted from the delete panel, as in the paper ("we cannot
// run this function correctly" — here, to mirror the figure).
func Fig10(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	var out []*Table
	type panel struct {
		name   string
		mix    workload.Mix
		lineup []index.Factory
	}
	noPactree := make([]index.Factory, 0, len(Indexes()))
	for i, f := range Indexes() {
		if i != 5 { // pactree position in Indexes()
			noPactree = append(noPactree, f)
		}
	}
	panels := []panel{
		{"(a) Insert", workload.Mix{Insert: 1}, Indexes()},
		{"(b) Update", workload.Mix{Update: 1}, Indexes()},
		{"(c) Delete", workload.Mix{Delete: 1}, noPactree},
		{"(d) Search", workload.Mix{Read: 1}, Indexes()},
		{"(e) Scan", workload.Mix{Scan: 1, ScanLen: s.ScanLen}, Indexes()},
	}
	for _, p := range panels {
		mix := p.mix
		tab, err := sweepTable(s, "Fig 10"+p.name+" throughput vs threads", p.lineup, mix, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, tab)
	}
	return out, nil
}

// Fig11 is the YCSB comparison: the five §5.2 mixes versus threads.
func Fig11(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	var out []*Table
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"(a) Insert-Only", workload.MixInsertOnly},
		{"(b) Insert-Intensive", workload.MixInsertIntensive},
		{"(c) Read-Intensive", workload.MixReadIntensive},
		{"(d) Read-Only", workload.MixReadOnly},
		{"(e) Scan-Insert", workload.MixScanInsert},
	}
	for _, m := range mixes {
		mix := m.mix
		if mix.ScanLen == 0 {
			mix.ScanLen = s.ScanLen
		}
		tab, err := sweepTable(s, "Fig 11"+m.name+" (YCSB) throughput vs threads", Indexes(), mix, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, tab)
	}
	return out, nil
}

// Fig12 reports the latency distribution of inserts and searches at the
// main thread count. DPTree's global-buffer merges surface here as the
// enormous insert tail the paper calls out (§5.2).
func Fig12(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	pcts := []float64{0, 20, 40, 60, 80, 90, 99, 99.9, 100}
	hdr := []string{"index"}
	for _, p := range pcts {
		switch p {
		case 0:
			hdr = append(hdr, "min")
		case 100:
			hdr = append(hdr, "max")
		default:
			hdr = append(hdr, fmt.Sprintf("p%g", p))
		}
	}
	var out []*Table
	for _, panel := range []struct {
		name string
		mix  workload.Mix
	}{
		{"(a) Insert", workload.Mix{Insert: 1}},
		{"(b) Search", workload.Mix{Read: 1}},
	} {
		t := &Table{
			Title:  "Fig 12" + panel.name + " latency percentiles (µs)",
			Header: hdr,
			Note:   fmt.Sprintf("%d threads; the paper notes DPTree's beyond-p99.9 inserts reach 300–400 ms (its buffer merge), visible here in the max column", s.MainThreads),
		}
		for _, f := range Indexes() {
			r, err := runOne(f, Spec{
				Threads: s.MainThreads,
				Warm:    s.Warm,
				Ops:     s.Ops,
				Mix:     panel.mix,
				Latency: true,
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row := []string{r.Name}
			for _, p := range pcts {
				row = append(row, f2(float64(r.Res.Pct(p))/1e3))
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}
