package bench

import (
	"fmt"
	"sync"

	"cclbtree"
	"cclbtree/internal/workload"
)

// BatchExp (extra) measures the Session.Apply group-commit path
// against the per-op write path on a bulk-ingest workload: each thread
// inserts blocks of consecutive keys, the natural shape for loaders
// and log shippers. Batching wins twice there — one WAL fence per
// group instead of per op, and runs of same-leaf ops coalesced into
// one buffer-flush — so both simulated throughput and
// CLI-amplification improve with the batch size.
func BatchExp(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Extra: Session.Apply group commit vs per-op writes (clustered insert)",
		Header: []string{"batch", "insert Mop/s", "speedup", "CLI-amp", "XBI-amp", "trigger flushes"},
		Note:   fmt.Sprintf("%d threads, per-thread sequential key blocks", s.MainThreads),
	}
	var baseMops float64
	for _, bs := range []int{1, 8, 32} {
		res, trig, err := runBatchInsert(s, bs)
		if err != nil {
			return nil, err
		}
		if bs == 1 {
			baseMops = res.Mops()
		}
		speedup := 0.0
		if baseMops > 0 {
			speedup = res.Mops() / baseMops
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bs),
			f2(res.Mops()),
			f2(speedup),
			f2(res.CLIAmp()),
			f2(res.XBIAmp()),
			fmt.Sprintf("%d", trig),
		})
	}
	return []*Table{t}, nil
}

// runBatchInsert loads s.Warm scrambled keys, then measures s.Ops
// clustered sequential inserts issued in groups of batchSize (1 =
// plain Session.Put). Returns the measured-phase result and the
// trigger-flush count.
func runBatchInsert(s Scale, batchSize int) (*Result, uint64, error) {
	pool := NewPool()
	db, err := cclbtree.NewOnPool(pool, cclbtree.Config{ChunkBytes: 256 << 10})
	if err != nil {
		return nil, 0, err
	}
	defer db.Close()
	threads := s.MainThreads
	sessions := make([]*cclbtree.Session, threads)
	for i := range sessions {
		sessions[i] = db.Session(i % pool.Sockets())
	}

	// Warm identically across batch sizes, per-op.
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := th; i < s.Warm; i += threads {
				if err := sessions[th].Put(loadKey(nil, i), 7); err != nil {
					errs[th] = err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}

	// Measured phase: each thread ingests one contiguous key block far
	// above the warm range, in groups of batchSize.
	perThread := s.Ops / threads
	if perThread == 0 {
		perThread = 1
	}
	base := pool.Stats()
	trigBase := db.Counters().TriggerWrites
	start := make([]int64, threads)
	for i, ss := range sessions {
		start[i] = ss.Thread().Now()
	}
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			ss := sessions[th]
			firstKey := uint64(1)<<40 + uint64(th)*uint64(perThread)
			if batchSize <= 1 {
				for i := 0; i < perThread; i++ {
					if err := ss.Put(firstKey+uint64(i), 7); err != nil {
						errs[th] = err
						return
					}
				}
				return
			}
			var b cclbtree.Batch
			for i := 0; i < perThread; i++ {
				b.Put(firstKey+uint64(i), 7)
				if b.Len() == batchSize || i == perThread-1 {
					if err := ss.Apply(&b); err != nil {
						errs[th] = err
						return
					}
					b.Reset()
				}
			}
		}(th)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}

	pool.DrainXPBuffers()
	res := &Result{Ops: perThread * threads}
	for i, ss := range sessions {
		if d := ss.Thread().Now() - start[i]; d > res.ElapsedNS {
			res.ElapsedNS = d
		}
	}
	res.Stats = pool.Stats().Sub(base)
	res.UserBytes = uint64(res.Ops) * 16
	res.DRAMBytes, res.PMBytes = db.MemoryUsage()
	trig := db.Counters().TriggerWrites - trigBase
	recordPhase(fmt.Sprintf("CCL-batch%d", batchSize), Spec{
		Threads: threads, Warm: s.Warm, Ops: s.Ops,
		Mix: workload.Mix{Insert: 1}, Seed: s.Seed,
	}, res)
	return res, trig, nil
}
