package bench

import (
	"strings"
	"testing"

	"cclbtree/internal/pmem"
	"cclbtree/internal/workload"
)

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x", "1.00"}, {"longer-cell", "2.50"}},
		Note:   "a note",
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "a note", "longer-cell", "2.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: header and rows share the first column width.
	lines := strings.Split(out, "\n")
	var hdr, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "a ") {
			hdr = l
		}
		if strings.HasPrefix(l, "longer-cell") {
			row = l
		}
	}
	if hdr == "" || row == "" {
		t.Fatalf("table structure unexpected:\n%s", out)
	}
	if strings.Index(row, "2.50") != strings.Index(hdr, "b") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestResultMetrics(t *testing.T) {
	r := &Result{Ops: 1000, ElapsedNS: 2_000_000}
	if got := r.Mops(); got != 0.5 {
		t.Fatalf("Mops = %v", got)
	}
	r.UserBytes = 16000
	r.Stats = pmem.Stats{XPBufWriteBytes: 64000, MediaWriteBytes: 160000}
	if r.CLIAmp() != 4 || r.XBIAmp() != 10 {
		t.Fatalf("amps = %v %v", r.CLIAmp(), r.XBIAmp())
	}
	r.Latencies = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if r.Pct(0) != 1 || r.Pct(50) != 6 || r.Pct(99.9) != 10 {
		t.Fatalf("percentiles: %d %d %d", r.Pct(0), r.Pct(50), r.Pct(99.9))
	}
}

func TestLoadKeyProperties(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		k := loadKey(nil, i)
		if k == 0 || k > 1<<62-1 {
			t.Fatalf("loadKey(%d) = %#x out of legal range", i, k)
		}
		if seen[k] {
			t.Fatalf("loadKey collision at %d", i)
		}
		seen[k] = true
	}
	// Explicit key sets wrap.
	keys := []uint64{7, 8, 9}
	if loadKey(keys, 4) != 8 {
		t.Fatal("explicit keyset indexing wrong")
	}
}

func TestByNameCoversAll(t *testing.T) {
	for _, e := range All() {
		got, ok := ByName(e.Name)
		if !ok || got.Name != e.Name {
			t.Fatalf("ByName(%q) failed", e.Name)
		}
		if e.Desc == "" {
			t.Fatalf("experiment %q undocumented", e.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestScaleDefaults(t *testing.T) {
	s := Scale{}.withDefaults()
	if s.Warm == 0 || s.Ops == 0 || len(s.Threads) == 0 || s.MainThreads == 0 {
		t.Fatalf("defaults missing: %+v", s)
	}
	s2 := Scale{Warm: 7}.withDefaults()
	if s2.Warm != 7 {
		t.Fatal("explicit field overridden")
	}
}

func TestRunReportsErrors(t *testing.T) {
	// A run against a pool too small to hold the load must surface the
	// allocation error, not hang or panic.
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 1 << 20})
	idx, err := Indexes()[0](pool) // FPTree
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(pool, idx, Spec{Threads: 2, Warm: 500000, Ops: 10, Mix: workload.MixInsertOnly})
	if err == nil {
		t.Fatal("overflowing load did not error")
	}
}
