package bench

import "testing"

func smokeScale() Scale {
	// -short still smokes every experiment, just at a scale that keeps
	// the whole package within the repo's <30s short-suite budget.
	if testing.Short() {
		return Scale{Warm: 400, Ops: 400, Threads: []int{2}, MainThreads: 2, ScanLen: 20, Seed: 1}
	}
	return Scale{Warm: 5000, Ops: 5000, Threads: []int{2, 8}, MainThreads: 8, ScanLen: 20, Seed: 1}
}

func TestSmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		// Zeroing full-size modeled devices per (index, thread-count)
		// run dwarfs the tiny smoke workload; shrink them for -short.
		old := benchDeviceBytes
		benchDeviceBytes = 16 << 20
		defer func() { benchDeviceBytes = old }()
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tabs, err := e.Run(smokeScale())
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(tabs) == 0 {
				t.Fatalf("%s produced no tables", e.Name)
			}
			for _, tb := range tabs {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.Name, tb.Title)
				}
			}
		})
	}
}
