package bench

import "testing"

func smokeScale() Scale {
	return Scale{Warm: 5000, Ops: 5000, Threads: []int{2, 8}, MainThreads: 8, ScanLen: 20, Seed: 1}
}

func TestSmokeAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tabs, err := e.Run(smokeScale())
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(tabs) == 0 {
				t.Fatalf("%s produced no tables", e.Name)
			}
			for _, tb := range tabs {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.Name, tb.Title)
				}
			}
		})
	}
}
