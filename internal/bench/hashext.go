package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"cclbtree/internal/cclhash"
	"cclbtree/internal/workload"
)

// ExtensionHash quantifies the §6 generality claim: the CCL techniques
// applied to a persistent hash table, swept over Nbatch (0 = the naive
// flush-per-insert table).
func ExtensionHash(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Extension (§6): CCL techniques on a persistent hash table",
		Header: []string{"Nbatch", "insert Mop/s", "XBI-amp", "logged/op", "GC runs"},
		Note:   fmt.Sprintf("%d threads, uniform upserts over %d keys", s.MainThreads, s.Warm),
	}
	for _, nb := range []int{-1, 1, 2, 4} {
		pool := NewPool()
		h, err := cclhash.New(pool, cclhash.Options{
			Buckets:    s.Warm / 8,
			Nbatch:     nb,
			ChunkBytes: 256 << 10,
		})
		if err != nil {
			return nil, err
		}
		threads := s.MainThreads
		workers := make([]*cclhash.Worker, threads)
		for i := range workers {
			workers[i] = h.NewWorker(i % pool.Sockets())
		}
		var wg sync.WaitGroup
		// Warm.
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				w := workers[th]
				for i := th; i < s.Warm; i += threads {
					_ = w.Put(loadKey(nil, i), 7)
				}
			}(th)
		}
		wg.Wait()
		pool.ResetStats()
		start := make([]int64, threads)
		for i, w := range workers {
			start[i] = w.Thread().Now()
		}
		perThread := s.Ops / threads
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				w := workers[th]
				rng := rand.New(rand.NewSource(s.Seed + int64(th)))
				u := workload.Uniform{N: uint64(s.Warm)}
				for i := 0; i < perThread; i++ {
					_ = w.Put(u.Next(rng), 9)
				}
			}(th)
		}
		wg.Wait()
		var elapsed int64
		for i, w := range workers {
			if d := w.Thread().Now() - start[i]; d > elapsed {
				elapsed = d
			}
		}
		pool.DrainXPBuffers()
		st := pool.Stats()
		ops := perThread * threads
		st.UserWriteBytes = uint64(ops * 16)
		_, logged, gcRuns, _ := h.Stats()
		h.Close()
		label := fmt.Sprintf("%d", nb)
		if nb == -1 {
			label = "0 (naive)"
		}
		t.Rows = append(t.Rows, []string{
			label,
			f2(float64(ops) * 1e3 / float64(elapsed)),
			f2(st.AmplificationFactor()),
			f2(float64(logged) / float64(ops+s.Warm)),
			fmt.Sprintf("%d", gcRuns),
		})
	}
	return []*Table{t}, nil
}
