package bench

import (
	"fmt"

	"cclbtree"
	"cclbtree/internal/server"
	"cclbtree/internal/workload"
)

// ShardsExp (extra) measures the serving tier's shard scaling: a
// clustered-insert load driven through internal/server commit lanes
// against a DB of 1, 2, 4 and 8 shards. One shard is today's
// single-tree behaviour behind one commit lane; more shards give the
// router more lanes, each pinned to its shard's home socket and
// advancing its own virtual clock, so aggregate throughput is total
// committed writes over the slowest lane's busy time. The per-shard
// lane attribution lands in the report's shard breakdown.
func ShardsExp(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	t := &Table{
		Title:  "Extra: serving-tier shard scaling (clustered insert via commit lanes)",
		Header: []string{"shards", "insert Mop/s", "speedup", "avg batch", "lane VT ms", "CLI-amp"},
		Note:   fmt.Sprintf("%d closed-loop clients, per-client sequential key blocks", s.MainThreads),
	}
	var baseMops float64
	for _, shards := range []int{1, 2, 4, 8} {
		res, avgBatch, err := runShardedInsert(s, shards)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			baseMops = res.Mops()
		}
		speedup := 0.0
		if baseMops > 0 {
			speedup = res.Mops() / baseMops
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			f2(res.Mops()),
			f2(speedup),
			f2(avgBatch),
			f2(float64(res.ElapsedNS) / 1e6),
			f2(res.CLIAmp()),
		})
	}
	return []*Table{t}, nil
}

// runShardedInsert drives s.Ops clustered inserts from s.MainThreads
// closed-loop clients through a Server over a shards-way DB, and
// returns the measured result (elapsed = slowest commit lane's virtual
// busy time) plus the mean group-commit size.
func runShardedInsert(s Scale, shards int) (*Result, float64, error) {
	pool := NewPool()
	db, err := cclbtree.NewOnPool(pool, cclbtree.Config{
		Shards:     shards,
		ChunkBytes: 256 << 10,
	})
	if err != nil {
		return nil, 0, err
	}
	defer db.Close()
	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		return nil, 0, err
	}
	defer srv.Close()

	base := pool.Stats()
	load, err := server.RunLoad(srv, server.Workload{
		Clients:   s.MainThreads,
		Ops:       s.Ops,
		Clustered: true,
	})
	if err != nil {
		return nil, 0, err
	}
	if load.Misread > 0 || load.Shed > 0 || load.Writes == 0 {
		return nil, 0, fmt.Errorf("shards=%d: degenerate load: %+v", shards, load)
	}
	pool.DrainXPBuffers()

	res := &Result{
		Ops:       int(load.Writes),
		ElapsedNS: load.WriteVirtualNS,
	}
	res.Stats = pool.Stats().Sub(base)
	res.UserBytes = load.Writes * 16
	res.DRAMBytes, res.PMBytes = db.MemoryUsage()
	for _, l := range srv.Stats().Lanes {
		res.ShardBreakdown = append(res.ShardBreakdown, l.ShardPhase())
	}
	recordPhase(fmt.Sprintf("CCL-%dshard", shards), Spec{
		Threads: s.MainThreads, Ops: s.Ops,
		Mix: workload.Mix{Insert: 1}, Seed: s.Seed,
	}, res)
	return res, load.AvgBatch, nil
}
