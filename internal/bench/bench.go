// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§5) on the PM device model,
// printing the same rows and series the paper reports.
//
// Throughputs are simulated-time throughputs: each worker goroutine is
// one "thread" with a virtual clock charged by the cost model, and a
// run's elapsed time is the slowest thread's clock advance. Shapes —
// which index wins, by what factor, where crossovers fall — are the
// reproduction target; absolute Mop/s depend on the calibration
// constants in pmem.DefaultCostModel.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"cclbtree"
	"cclbtree/internal/baselines/cclidx"
	"cclbtree/internal/baselines/dptree"
	"cclbtree/internal/baselines/fastfair"
	"cclbtree/internal/baselines/flatstore"
	"cclbtree/internal/baselines/fptree"
	"cclbtree/internal/baselines/lbtree"
	"cclbtree/internal/baselines/lsm"
	"cclbtree/internal/baselines/pactree"
	"cclbtree/internal/baselines/utree"
	"cclbtree/internal/index"
	"cclbtree/internal/obs"
	"cclbtree/internal/pmalloc"
	"cclbtree/internal/pmem"
	"cclbtree/internal/workload"
)

// Scale sets the experiment sizes. The paper's runs (50 M warm + 50 M
// ops, up to 96 threads) are scaled down by default so the whole suite
// finishes in minutes; pass a larger Scale to push toward paper size.
type Scale struct {
	// Warm is the number of keys loaded before measurement.
	Warm int
	// Ops is the number of measured operations.
	Ops int
	// Threads is the thread sweep used by the vs-threads figures.
	Threads []int
	// MainThreads is the fixed thread count of the single-point
	// experiments (the paper uses 48).
	MainThreads int
	// ScanLen is the default range-query length (paper: 100).
	ScanLen int
	// Seed makes runs reproducible.
	Seed int64
	// Tracer, when non-nil and enabled, is attached by experiments that
	// build metrics-enabled CCL trees (currently ycsbb) so operation,
	// device and span-segment events land in its ring (cclbench -trace).
	Tracer *obs.Tracer
}

// DefaultScale returns the quick configuration (≈1/500 of paper size).
func DefaultScale() Scale {
	return Scale{
		Warm:        100_000,
		Ops:         100_000,
		Threads:     []int{1, 8, 24, 48, 96},
		MainThreads: 48,
		ScanLen:     100,
		Seed:        1,
	}
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Warm == 0 {
		s.Warm = d.Warm
	}
	if s.Ops == 0 {
		s.Ops = d.Ops
	}
	if len(s.Threads) == 0 {
		s.Threads = d.Threads
	}
	if s.MainThreads == 0 {
		s.MainThreads = d.MainThreads
	}
	if s.ScanLen == 0 {
		s.ScanLen = d.ScanLen
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

// benchCacheLines scales the modeled CPU cache to the benchmark's
// dataset the way the paper's testbed relates L3 (36 MB) to its 1.6 GB
// datasets (~2%): at the default 100 k-key scale the working set is a
// few MB, so the cache models 256 KB of dirty lines. This is what makes
// the eADR experiment (Fig 16) behave: implicit evictions — not
// explicit flushes — carry dirty lines to media.
const benchCacheLines = 4096

// benchDeviceBytes is the modeled per-socket device size. A variable,
// not a constant, so the -short smoke test can shrink it: zeroing two
// 256 MB devices per (index, thread-count) run is the dominant cost of
// tiny smoke workloads.
var benchDeviceBytes int64 = 256 << 20

// NewPool builds the standard benchmark platform: two sockets, four
// DIMMs each, crash tracking off (perf experiments never crash; the
// recovery experiment builds its own pool).
func NewPool() *pmem.Pool {
	return pmem.NewPool(pmem.Config{
		Sockets:              2,
		DIMMsPerSocket:       4,
		DeviceBytes:          benchDeviceBytes,
		CacheLines:           benchCacheLines,
		DisableCrashTracking: true,
	})
}

// Indexes returns the evaluation's index lineup (§5.1) as factories.
// CCL-BTree is always last so tables read like the paper's.
func Indexes() []index.Factory {
	return []index.Factory{
		fptree.Factory(),
		fastfair.Factory(),
		dptree.Factory(),
		utree.Factory(),
		lbtree.Factory(),
		pactree.Factory(),
		benchCCL(),
	}
}

// benchCCL is the paper-default CCL-BTree with the WAL chunk size
// scaled to the benchmark's dataset scale (the paper's 4 MB chunks at
// 50 M keys correspond to ~256 KB at the default 100 k scale; per-
// thread logs must not dwarf the scaled-down device).
func benchCCL() index.Factory {
	return cclidx.Factory("CCL-BTree", cclbtree.Config{ChunkBytes: 256 << 10})
}

// LogStructured returns the Table 3 lineup.
func LogStructured() []index.Factory {
	return []index.Factory{lsm.Factory(), flatstore.Factory(), benchCCL()}
}

// Spec describes one measured run.
type Spec struct {
	Threads int
	Warm    int
	Ops     int
	Mix     workload.Mix
	// Access builds the per-thread key stream for reads/updates/scans
	// over the loaded space. Nil = uniform.
	Access func(thread int) workload.Access
	// Keys, when set, is the explicit load key set (Fig 19 datasets);
	// otherwise keys are the scrambled integers 1..Warm.
	Keys []uint64
	// ValueBlobBytes > 0 stores values out-of-band at this size
	// through a shared arena and puts the 8 B pointer in the index
	// (§4.4 indirection, Fig 15c / Fig 18).
	ValueBlobBytes int
	// Latency records per-op latencies for percentile reporting.
	Latency bool
	Seed    int64
}

// Result is one run's measurements.
type Result struct {
	Ops       int
	ElapsedNS int64
	Stats     pmem.Stats
	// UserBytes is the payload volume of the measured phase's write
	// operations, the denominator of the amplification factors (the
	// harness computes it so every index is measured identically).
	UserBytes uint64
	// Latencies in ns, sorted, when Spec.Latency was set.
	Latencies []int64
	DRAMBytes int64
	PMBytes   int64
	// Profile is the index's contention/heat profile, captured after the
	// measured phase when the index exposes one (CCL-BTree with
	// Config.Metrics on); nil otherwise. Cumulative since index
	// creation, so it includes the load phase.
	Profile *obs.Profile
	// ShardBreakdown is the per-shard commit-lane attribution when the
	// phase ran through the serving tier (shards experiment); nil for
	// single-tree phases.
	ShardBreakdown []obs.ShardPhase
}

// profiled is the optional index capability the harness probes for: an
// index that can report the second obs tier (lock contention, span
// attribution, leaf heat).
type profiled interface {
	Profile() obs.Profile
}

// ampStats is the phase's stats with the harness-computed payload
// volume as denominator, so the pmem amplification helpers apply: the
// harness measures every index with the same UserBytes regardless of
// whether the index itself calls AddUserBytes.
func (r *Result) ampStats() pmem.Stats {
	s := r.Stats
	s.UserWriteBytes = r.UserBytes
	return s
}

// CLIAmp is bytes reaching the XPBuffer per user byte written.
func (r *Result) CLIAmp() float64 { return r.ampStats().CLIAmplification() }

// XBIAmp is bytes written to media per user byte written.
func (r *Result) XBIAmp() float64 { return r.ampStats().AmplificationFactor() }

// Mops returns the simulated throughput in million ops/s.
func (r *Result) Mops() float64 {
	if r.ElapsedNS == 0 {
		return 0
	}
	return float64(r.Ops) * 1e3 / float64(r.ElapsedNS)
}

// Pct returns the p-th percentile latency in ns.
func (r *Result) Pct(p float64) int64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(r.Latencies)))
	if i >= len(r.Latencies) {
		i = len(r.Latencies) - 1
	}
	return r.Latencies[i]
}

// loadKey maps a load index to its key.
func loadKey(keys []uint64, i int) uint64 {
	if keys != nil {
		return keys[i%len(keys)]
	}
	k := uint64(i + 1)
	// SplitMix64 scramble, masked into the legal key space.
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	k &= 1<<62 - 1
	if k == 0 {
		k = 1
	}
	return k
}

// blobArena writes fixed-size value blobs for the indirection runs.
type blobArena struct {
	mu    sync.Mutex
	alloc *pmalloc.Allocator
	cur   pmem.Addr
	off   int
}

func (a *blobArena) write(t *pmem.Thread, size int) (uint64, error) {
	const chunk = 1 << 20
	a.mu.Lock()
	need := (size + 7) &^ 7
	if a.cur.IsNil() || a.off+need > chunk {
		c, err := a.alloc.Alloc(t.Socket(), chunk)
		if err != nil {
			a.mu.Unlock()
			return 0, err
		}
		a.cur, a.off = c, 0
	}
	addr := a.cur.Add(int64(a.off))
	a.off += need
	a.mu.Unlock()
	words := make([]uint64, need/8)
	for i := range words {
		words[i] = 0x5c5c5c5c5c5c5c5c
	}
	t.WriteRange(addr, words)
	t.Persist(addr, need)
	return 1<<63 | addr.Pack48(), nil
}

// Run loads the index and executes the measured phase, returning the
// aggregated result.
func Run(pool *pmem.Pool, idx index.Index, spec Spec) (*Result, error) {
	if spec.Threads < 1 {
		spec.Threads = 1
	}
	// Point the live observation endpoint (cclbench -http / cclstat
	// -attach) at the pool currently being measured; when the index can
	// profile itself, the live view carries the profile too.
	obs.SetLive(func() obs.Observation {
		o := obs.Observe(pool)
		if p, ok := idx.(profiled); ok {
			pr := p.Profile()
			o.Profile = &pr
		}
		return o
	})
	sockets := pool.Sockets()
	handles := make([]index.Handle, spec.Threads)
	for i := range handles {
		handles[i] = idx.NewHandle(i % sockets)
	}
	var arena *blobArena
	if spec.ValueBlobBytes > 0 {
		arena = &blobArena{alloc: pmalloc.New(pool)}
	}

	valueFor := func(h index.Handle, key uint64) (uint64, error) {
		if arena == nil {
			return key + 1, nil
		}
		return arena.write(h.Thread(), spec.ValueBlobBytes)
	}

	// Load phase.
	var wg sync.WaitGroup
	loadErr := make([]error, spec.Threads)
	for th := 0; th < spec.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h := handles[th]
			for i := th; i < spec.Warm; i += spec.Threads {
				k := loadKey(spec.Keys, i)
				v, err := valueFor(h, k)
				if err == nil {
					err = h.Upsert(k, v)
				}
				if err != nil {
					loadErr[th] = err
					return
				}
			}
		}(th)
	}
	wg.Wait()
	for _, err := range loadErr {
		if err != nil {
			return nil, fmt.Errorf("bench load: %w", err)
		}
	}

	// Measured phase.
	base := pool.Stats()
	startVT := make([]int64, spec.Threads)
	for th, h := range handles {
		startVT[th] = h.Thread().Now()
	}
	perThread := spec.Ops / spec.Threads
	if perThread == 0 {
		perThread = 1
	}
	lat := make([][]int64, spec.Threads)
	writeOps := make([]int64, spec.Threads)
	runErr := make([]error, spec.Threads)
	for th := 0; th < spec.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h := handles[th]
			t := h.Thread()
			rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(th)))
			var access workload.Access
			if spec.Access != nil {
				access = spec.Access(th)
			} else {
				access = workload.Uniform{N: uint64(max(spec.Warm, 1))}
			}
			insertCursor := spec.Warm + th
			deleteCursor := th
			scanOut := make([]index.KV, max(spec.Mix.ScanLen, 1))
			if spec.Latency {
				lat[th] = make([]int64, 0, perThread)
			}
			for i := 0; i < perThread; i++ {
				before := t.Now()
				var err error
				switch spec.Mix.Pick(rng) {
				case workload.OpInsert:
					k := loadKey(spec.Keys, insertCursor)
					insertCursor += spec.Threads
					var v uint64
					if v, err = valueFor(h, k); err == nil {
						err = h.Upsert(k, v)
					}
					writeOps[th]++
				case workload.OpUpdate:
					k := access.Next(rng)
					if spec.Keys != nil {
						k = spec.Keys[k%uint64(len(spec.Keys))]
					}
					var v uint64
					if v, err = valueFor(h, k); err == nil {
						err = h.Upsert(k, v)
					}
					writeOps[th]++
				case workload.OpRead:
					k := access.Next(rng)
					if spec.Keys != nil {
						k = spec.Keys[k%uint64(len(spec.Keys))]
					}
					_, _ = h.Lookup(k)
				case workload.OpScan:
					k := access.Next(rng)
					if spec.Keys != nil {
						k = spec.Keys[k%uint64(len(spec.Keys))]
					}
					n := spec.Mix.ScanLen
					if n <= 0 {
						n = 100
					}
					_ = h.Scan(k, n, scanOut)
				case workload.OpDelete:
					k := loadKey(spec.Keys, deleteCursor)
					deleteCursor += spec.Threads
					err = h.Delete(k)
					writeOps[th]++
				}
				if err != nil {
					runErr[th] = err
					return
				}
				if spec.Latency {
					lat[th] = append(lat[th], t.Now()-before)
				}
			}
		}(th)
	}
	wg.Wait()
	for _, err := range runErr {
		if err != nil {
			return nil, fmt.Errorf("bench run: %w", err)
		}
	}

	pool.DrainXPBuffers()
	res := &Result{Ops: perThread * spec.Threads}
	for th, h := range handles {
		if d := h.Thread().Now() - startVT[th]; d > res.ElapsedNS {
			res.ElapsedNS = d
		}
	}
	res.Stats = pool.Stats().Sub(base)
	opBytes := uint64(16)
	if spec.ValueBlobBytes > 0 {
		opBytes = uint64(8 + spec.ValueBlobBytes)
	}
	for _, w := range writeOps {
		res.UserBytes += uint64(w) * opBytes
	}
	res.DRAMBytes, res.PMBytes = idx.MemoryUsage()
	if p, ok := idx.(profiled); ok {
		pr := p.Profile()
		res.Profile = &pr
	}
	if spec.Latency {
		for _, l := range lat {
			res.Latencies = append(res.Latencies, l...)
		}
		sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	}
	recordPhase(idx.Name(), spec, res)
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// Fprint renders the table in aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// f2 and f1 format floats for table cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// newPoolLead builds the standard pool with a custom queue-lead (model
// calibration experiments).
func newPoolLead(lead int64) *pmem.Pool {
	c := pmem.DefaultCostModel()
	c.MaxQueueLead = lead
	return pmem.NewPool(pmem.Config{
		Sockets:              2,
		DIMMsPerSocket:       4,
		DeviceBytes:          benchDeviceBytes,
		DisableCrashTracking: true,
		Cost:                 c,
	})
}
