package bench

import (
	"fmt"

	"cclbtree/internal/obs"
)

// DefaultTolerance is the relative slack the perf-regression gate
// allows before a phase counts as regressed. The simulated clock is
// deterministic, but phase metrics still move with incidental factors —
// goroutine interleaving feeds the group-commit batcher, allocator
// layout shifts leaf splits — so the gate is a tripwire for step
// changes, not a 1% lock.
const DefaultTolerance = 0.35

// CompareReports checks cur against base phase by phase (matched on the
// Phase string) and returns one human-readable violation per regressed
// metric. tol ≤ 0 means DefaultTolerance. A phase is regressed when
//
//   - throughput fell below base·(1−tol),
//   - write amplification (WA or CLI) rose above base·(1+tol),
//   - p99 latency rose above base·(1+2·tol) (tails are noisier), or
//   - the phase disappeared from cur entirely.
//
// Phases present only in cur are ignored: adding coverage is not a
// regression. An empty slice means the gate passes.
func CompareReports(base, cur *obs.BenchReport, tol float64) []string {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	curBy := map[string]*obs.PhaseRecord{}
	for i := range cur.Phases {
		curBy[cur.Phases[i].Phase] = &cur.Phases[i]
	}
	var bad []string
	for i := range base.Phases {
		b := &base.Phases[i]
		c, ok := curBy[b.Phase]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: phase missing from current report", b.Phase))
			continue
		}
		if floor := b.MopsPerSec * (1 - tol); c.MopsPerSec < floor {
			bad = append(bad, fmt.Sprintf("%s: throughput %.2f Mop/s below floor %.2f (base %.2f, tol %.0f%%)",
				b.Phase, c.MopsPerSec, floor, b.MopsPerSec, tol*100))
		}
		if ceil := b.WAFactor * (1 + tol); b.WAFactor > 0 && c.WAFactor > ceil {
			bad = append(bad, fmt.Sprintf("%s: write amplification %.2f above ceiling %.2f (base %.2f)",
				b.Phase, c.WAFactor, ceil, b.WAFactor))
		}
		if ceil := b.CLIFactor * (1 + tol); b.CLIFactor > 0 && c.CLIFactor > ceil {
			bad = append(bad, fmt.Sprintf("%s: CLI amplification %.2f above ceiling %.2f (base %.2f)",
				b.Phase, c.CLIFactor, ceil, b.CLIFactor))
		}
		if ceil := uint64(float64(b.P99Nanos) * (1 + 2*tol)); b.P99Nanos > 0 && c.P99Nanos > ceil {
			bad = append(bad, fmt.Sprintf("%s: p99 latency %d ns above ceiling %d (base %d)",
				b.Phase, c.P99Nanos, ceil, b.P99Nanos))
		}
	}
	return bad
}
