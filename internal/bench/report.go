package bench

import (
	"fmt"
	"sync"

	"cclbtree/internal/obs"
)

// The package-level phase recorder. When a report is active (between
// StartReport and FinishReport) every Run records one PhaseRecord with
// the phase's counter deltas, latency quantiles and per-scope byte
// attribution. When inactive, recording is a no-op so library users of
// Run pay nothing.
var (
	recMu sync.Mutex
	rec   *obs.BenchReport
)

// StartReport begins collecting phase records under the given
// experiment name. A previous unfinished report is discarded.
func StartReport(name string) {
	recMu.Lock()
	rec = &obs.BenchReport{Name: name}
	recMu.Unlock()
}

// FinishReport ends collection and returns the report (nil if none was
// started). The live observation source installed by Run is
// uninstalled, since its pool is about to go away.
func FinishReport() *obs.BenchReport {
	recMu.Lock()
	r := rec
	rec = nil
	recMu.Unlock()
	obs.SetLive(nil)
	return r
}

// SnapshotReport returns a copy of the in-progress report (nil if none
// is active) without ending collection: the signal handler in cclbench
// uses it to persist a partial report on SIGINT/SIGTERM while the
// experiment keeps running to its own demise.
func SnapshotReport() *obs.BenchReport {
	recMu.Lock()
	defer recMu.Unlock()
	if rec == nil {
		return nil
	}
	cp := *rec
	cp.Phases = append([]obs.PhaseRecord(nil), rec.Phases...)
	return &cp
}

// recordPhase appends one measured phase to the active report.
// Per-scope media bytes come from the same monotone counters as
// MediaWriteBytes, so within a phase delta they sum exactly to it.
func recordPhase(idxName string, spec Spec, res *Result) {
	recMu.Lock()
	defer recMu.Unlock()
	if rec == nil {
		return
	}
	s := res.Stats
	s.UserWriteBytes = res.UserBytes
	rec.Phases = append(rec.Phases, obs.PhaseRecord{
		Phase:   fmt.Sprintf("%02d:%s/t%d", len(rec.Phases), idxName, spec.Threads),
		Index:   idxName,
		Threads: spec.Threads,
		Ops:     uint64(res.Ops),

		ElapsedVTNanos: res.ElapsedNS,
		MopsPerSec:     res.Mops(),
		P50Nanos:       uint64(res.Pct(50)),
		P99Nanos:       uint64(res.Pct(99)),

		UserBytes:       res.UserBytes,
		MediaWriteBytes: s.MediaWriteBytes,
		XPBufWriteBytes: s.XPBufWriteBytes,
		WAFactor:        s.AmplificationFactor(),
		CLIFactor:       s.CLIAmplification(),
		XPBufHitRate:    s.WriteHitRate(),

		ScopeMediaBytes: s.ScopeMediaBytes(),
		TagMediaBytes:   s.TagMediaBytes(),

		Profile:        res.Profile,
		ShardBreakdown: res.ShardBreakdown,
	})
}
