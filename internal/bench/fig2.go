package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"cclbtree/internal/pmem"
)

// Fig2 reproduces the motivating device experiment of §2.2: with the
// number of XPLine flushes fixed, adding cacheline flushes barely moves
// multi-threaded execution time (a); with cacheline flushes fixed,
// execution time grows linearly with XPLine flushes (b). The takeaway
// is that XBI-amplification, not CLI-amplification, bounds throughput
// once PM bandwidth saturates.
func Fig2(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	reps := s.Ops / 10
	if reps < 2000 {
		reps = 2000
	}
	threadCounts := s.Threads

	run := func(threads, cachelines, xplines int) int64 {
		pool := NewPool()
		var wg sync.WaitGroup
		elapsed := make([]int64, threads)
		// Each thread owns a private region so flush targets are
		// random XPLines, as in the paper's microbenchmark.
		regionXPLines := int64(4096)
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				t := pool.NewThread(th % pool.Sockets())
				rng := rand.New(rand.NewSource(int64(th + 1)))
				base := int64(th) * regionXPLines * pmem.XPLineSize
				for i := 0; i < reps; i++ {
					for x := 0; x < xplines; x++ {
						xp := base + rng.Int63n(regionXPLines)*pmem.XPLineSize
						a := pmem.MakeAddr(th%pool.Sockets(), uint64(xp))
						for c := 0; c < cachelines; c++ {
							line := a.Add(int64(c%4) * pmem.CachelineSize)
							t.Store(line, uint64(i))
							t.Flush(line, 8)
						}
						t.Fence()
					}
				}
				elapsed[th] = t.Now()
			}(th)
		}
		wg.Wait()
		var maxNS int64
		for _, e := range elapsed {
			if e > maxNS {
				maxNS = e
			}
		}
		return maxNS
	}

	a := &Table{
		Title:  "Fig 2(a): exec time (ms) vs threads — N cacheline flushes into ONE XPLine per op",
		Header: []string{"threads", "N=1", "N=2", "N=3", "N=4"},
		Note:   fmt.Sprintf("%d ops/thread; times converge as threads grow: cacheline count stops mattering", reps),
	}
	for _, th := range threadCounts {
		row := []string{fmt.Sprintf("%d", th)}
		for n := 1; n <= 4; n++ {
			row = append(row, f2(float64(run(th, n, 1))/1e6))
		}
		a.Rows = append(a.Rows, row)
	}

	b := &Table{
		Title:  "Fig 2(b): exec time (ms) vs threads — 4 cacheline flushes into N XPLines per op",
		Header: []string{"threads", "N=1", "N=2", "N=3", "N=4"},
		Note:   "time scales ~linearly with XPLine flushes at every thread count",
	}
	for _, th := range threadCounts {
		row := []string{fmt.Sprintf("%d", th)}
		for n := 1; n <= 4; n++ {
			// 4 cacheline flushes spread over n XPLines.
			per := 4 / n
			if per < 1 {
				per = 1
			}
			row = append(row, f2(float64(run(th, per, n))/1e6))
		}
		b.Rows = append(b.Rows, row)
	}
	return []*Table{a, b}, nil
}
