package bench

import (
	"fmt"

	"cclbtree/internal/baselines/flatstore"
	"cclbtree/internal/workload"
)

// amplificationTable measures CLI/XBI amplification and execution time
// for every index under one access pattern (Figs 3 and 4).
func amplificationTable(s Scale, title string, access func(thread int) workload.Access, mix workload.Mix) ([]*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"index", "CLI-amp", "XBI-amp", "time(ms)"},
		Note:   fmt.Sprintf("%d warm keys, %d measured upserts, %d threads", s.Warm, s.Ops, s.MainThreads),
	}
	factories := append(Indexes(), flatstore.Factory())
	for _, f := range factories {
		r, err := runOne(f, Spec{
			Threads: s.MainThreads,
			Warm:    s.Warm,
			Ops:     s.Ops,
			Mix:     mix,
			Access:  access,
			Seed:    s.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			r.Name,
			f2(r.Res.CLIAmp()),
			f2(r.Res.XBIAmp()),
			f2(float64(r.Res.ElapsedNS) / 1e6),
		})
	}
	return []*Table{t}, nil
}

// Fig3 is the uniform-distribution amplification comparison of §2.3.
func Fig3(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	return amplificationTable(s,
		"Fig 3: write amplification and execution time, uniform distribution",
		nil, // uniform access
		workload.Mix{Insert: 0.5, Update: 0.5})
}

// Fig4 is the Zipfian (0.9) variant.
func Fig4(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	z := workload.NewZipf(uint64(s.Warm), 0.9)
	return amplificationTable(s,
		"Fig 4: write amplification and execution time, Zipfian 0.9",
		func(int) workload.Access { return z },
		workload.Mix{Update: 1})
}

// Fig5 sweeps the range-query size (50–400) at the main thread count,
// including FlatStore, whose chronological layout collapses here.
func Fig5(s Scale) ([]*Table, error) {
	s = s.withDefaults()
	sizes := []int{50, 100, 200, 400}
	t := &Table{
		Title:  "Fig 5: range query throughput (Mop/s) vs scan size",
		Header: []string{"index", "50", "100", "200", "400"},
		Note:   fmt.Sprintf("%d keys, %d threads", s.Warm, s.MainThreads),
	}
	factories := append(Indexes(), flatstore.Factory())
	for _, f := range factories {
		row := []string{""}
		for _, sz := range sizes {
			r, err := runOne(f, Spec{
				Threads: s.MainThreads,
				Warm:    s.Warm,
				Ops:     s.Ops / 10,
				Mix:     workload.Mix{Scan: 1, ScanLen: sz},
				Seed:    s.Seed,
			})
			if err != nil {
				return nil, err
			}
			row[0] = r.Name
			row = append(row, f2(r.Res.Mops()))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
