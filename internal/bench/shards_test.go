package bench

import "testing"

// TestShardScaling is the acceptance gate for the sharded serving
// tier: on a clustered-insert load through the server's commit lanes,
// 8 shards must deliver at least 3× the aggregate throughput of 1
// shard (ops over the slowest lane's virtual busy time), and every
// shard must show up in the per-shard attribution.
func TestShardScaling(t *testing.T) {
	s := Scale{Warm: 1, Ops: 24_000, MainThreads: 16, Seed: 1}

	one, _, err := runShardedInsert(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, _, err := runShardedInsert(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if one.ElapsedNS <= 0 || eight.ElapsedNS <= 0 {
		t.Fatalf("lane virtual time not accounted: 1-shard %d ns, 8-shard %d ns",
			one.ElapsedNS, eight.ElapsedNS)
	}
	speedup := eight.Mops() / one.Mops()
	if speedup < 3 {
		t.Fatalf("8 shards gave %.2fx over 1 shard (%.2f vs %.2f Mop/s), want >= 3x",
			speedup, eight.Mops(), one.Mops())
	}

	if len(eight.ShardBreakdown) != 8 {
		t.Fatalf("shard breakdown has %d entries, want 8", len(eight.ShardBreakdown))
	}
	var ops uint64
	for _, sp := range eight.ShardBreakdown {
		if sp.Ops == 0 || sp.VirtualNS == 0 {
			t.Fatalf("shard %d missing attribution: %+v", sp.Shard, sp)
		}
		if sp.Upserts == 0 {
			t.Fatalf("shard %d tree counters not attributed: %+v", sp.Shard, sp)
		}
		ops += sp.Ops
	}
	if ops != uint64(eight.Ops) {
		t.Fatalf("lane ops sum to %d, measured %d", ops, eight.Ops)
	}
}
