// Package torture is the concurrent crash-recovery harness: seeded
// randomized workloads over the CCL-BTree with power failures injected
// at randomized and adversarially chosen flush points, followed by
// recovery and a durable-prefix linearizability check (oracle.go).
//
// One Run is a sequence of rounds against a single persistent image.
// Each round arms a crash plan (crashplan.go), drives N worker
// goroutines that record per-op histories with ORDO invoke/return
// ticks (history.go), crashes the modeled machine — rolling back every
// unfenced flush, optionally tearing pending XPLines — recovers with
// core.Open, and checks the recovered state against the history. The
// next round continues on the recovered tree, so the harness also
// exercises repeated crash-recover-crash sequences (which is how the
// recovery clock-resume bug was found).
//
// Determinism: the workload, per-worker op streams, and crash plans
// derive entirely from Config.Seed, so a failing seed re-runs the same
// schedule of writes and the same fault placement. Goroutine
// interleaving is the one nondeterministic input; single-threaded
// configurations replay exactly.
package torture

import (
	"fmt"
	"math/rand"
	"sync"

	"cclbtree/internal/core"
	"cclbtree/internal/pmem"
)

// Config parameterizes one torture run. The zero value is completed by
// withDefaults; Seed 0 is a valid (and distinct) seed.
type Config struct {
	Seed         int64  `json:"seed"`
	Threads      int    `json:"threads"`
	Rounds       int    `json:"rounds"`
	OpsPerThread int    `json:"ops_per_thread"`
	KeySpace     uint64 `json:"key_space"`
	EADR         bool   `json:"eadr"`
	GC           string `json:"gc"` // "locality", "naive", "off"
	Torn         bool   `json:"torn"`
	Sockets      int    `json:"sockets"`
	DeviceBytes  int64  `json:"device_bytes"`
	ChunkBytes   int    `json:"chunk_bytes"`
	// BatchSize > 1 routes writes through Worker.ApplyBatch group
	// commits of that size (reads still execute per-op). All ops of one
	// batch share invoke/return ticks; crash atomicity stays per-op, so
	// the durable-prefix oracle applies unchanged. 0 or 1 keeps the
	// per-op write path.
	BatchSize int `json:"batch_size,omitempty"`
	// UnsafeSkipWALFence plants the deliberate durability bug (WAL
	// appends flushed but never fenced) used to prove the oracle
	// catches real violations. Never set outside oracle self-tests.
	UnsafeSkipWALFence bool `json:"unsafe_skip_wal_fence,omitempty"`
	// UnsafeSkipReadRecheck plants the deliberate read-linearizability
	// bug (optimistic readers ignore their seqlock re-validation, so
	// torn reads racing writers are returned as consistent), used to
	// prove the read oracle catches real violations. Never set outside
	// oracle self-tests.
	UnsafeSkipReadRecheck bool `json:"unsafe_skip_read_recheck,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 6
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 400
	}
	if c.KeySpace == 0 {
		c.KeySpace = 256
	}
	if c.GC == "" {
		c.GC = "locality"
	}
	if c.Sockets == 0 {
		c.Sockets = 2
	}
	if c.DeviceBytes == 0 {
		c.DeviceBytes = 16 << 20
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 8 << 10 // small chunks so GC triggers under test-sized workloads
	}
	return c
}

func (c Config) gcPolicy() (core.GCPolicy, error) {
	switch c.GC {
	case "locality":
		return core.GCLocalityAware, nil
	case "naive":
		return core.GCNaive, nil
	case "off":
		return core.GCOff, nil
	}
	return 0, fmt.Errorf("torture: unknown gc policy %q", c.GC)
}

// RoundReport summarizes one crash-recover round.
type RoundReport struct {
	Round     int    `json:"round"`
	Plan      string `json:"plan"`
	Crashed   bool   `json:"crashed"` // fault fired mid-workload (vs quiescent crash)
	Flushes   int64  `json:"flushes"`
	Completed int    `json:"completed"`
	InFlight  int    `json:"in_flight"`
	Replayed  int    `json:"replayed"`
	Dropped   int    `json:"dropped"`
	TornLines int    `json:"torn_lines"`
}

// Result is one Run's outcome. Violations non-empty means the oracle
// caught a durability or atomicity violation.
type Result struct {
	Config       Config        `json:"config"`
	Rounds       []RoundReport `json:"rounds"`
	OpsCompleted int64         `json:"ops_completed"`
	Crashes      int           `json:"crashes"`
	Violations   []Violation   `json:"violations,omitempty"`
}

// Failed reports whether the oracle found violations.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Run executes one torture run to completion (or to the first round
// with violations, which ends the run early — later rounds would
// build on a state already known to be wrong).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	gc, err := cfg.gcPolicy()
	if err != nil {
		return nil, err
	}
	mode := pmem.ADR
	if cfg.EADR {
		mode = pmem.EADR
	}
	pool := pmem.NewPool(pmem.Config{
		Sockets:        cfg.Sockets,
		DIMMsPerSocket: 1,
		DeviceBytes:    cfg.DeviceBytes,
		Mode:           mode,
		StrictPersist:  true,
	})
	opts := core.Options{
		GC:                    gc,
		ChunkBytes:            cfg.ChunkBytes,
		UnsafeSkipWALFence:    cfg.UnsafeSkipWALFence,
		UnsafeSkipReadRecheck: cfg.UnsafeSkipReadRecheck,
	}
	tr, err := core.New(pool, opts)
	if err != nil {
		return nil, err
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Config: cfg}
	baseline := map[uint64]uint64{}
	everWritten := map[uint64]map[uint64]bool{}
	var flushBudget int64

	for round := 0; round < cfg.Rounds; round++ {
		plan := planForRound(master, round, flushBudget)
		// Per-worker op seeds are drawn from the master BEFORE any
		// goroutine runs, so the op streams depend only on Config.Seed.
		seeds := make([]int64, cfg.Threads)
		for i := range seeds {
			seeds[i] = master.Int63()
		}
		tearSeed := master.Int63()

		flushStart := pool.FlushCalls()
		pool.FailWhen(plan.predicate())

		histories := make([][]Op, cfg.Threads)
		workers := make([]*core.Worker, cfg.Threads)
		for i := range workers {
			workers[i] = tr.NewWorker(i % cfg.Sockets)
		}
		var wg sync.WaitGroup
		var workerErr error
		var errMu sync.Mutex
		for i := 0; i < cfg.Threads; i++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				if err := runWorker(tr, workers[wid], wid, round, seeds[wid], cfg, &histories[wid]); err != nil {
					errMu.Lock()
					if workerErr == nil {
						workerErr = err
					}
					errMu.Unlock()
				}
			}(i)
		}
		wg.Wait()
		if workerErr != nil {
			return nil, fmt.Errorf("torture: round %d worker: %w", round, workerErr)
		}

		// Teardown in power-failure order: stop background activity,
		// tear what was in flight, disarm, then lose power.
		crashed := pool.FaultFired()
		tr.Freeze()
		torn := 0
		if cfg.Torn && crashed {
			for _, w := range workers {
				torn += w.Thread().TearPending(tearSeed)
			}
		}
		pool.FailWhen(nil)
		pool.Crash()

		rec, st, err := core.Open(pool, opts, cfg.Threads)
		if err != nil {
			// The harness injects no corruption, so a rejected image is
			// itself a crash-consistency failure.
			res.Violations = append(res.Violations, Violation{
				Round: round, Reason: fmt.Sprintf("recovery rejected the crash image: %v", err),
			})
			res.Rounds = append(res.Rounds, RoundReport{Round: round, Plan: plan.String(), Crashed: crashed})
			return res, nil
		}

		h := newHistory(histories)
		completed, inFlight := 0, 0
		for i := range h.ops {
			if h.ops[i].Done {
				completed++
			} else {
				inFlight++
			}
		}
		res.OpsCompleted += int64(completed)
		if crashed {
			res.Crashes++
		}
		for _, op := range h.ops {
			if op.isWrite() {
				if everWritten[op.Key] == nil {
					everWritten[op.Key] = map[uint64]bool{}
				}
				everWritten[op.Key][op.writtenValue()] = true
			}
		}

		byLookup, byScan := snapshot(rec, cfg.KeySpace)
		vs := checkDurablePrefix(rec.Clock(), baseline, h, byLookup, round)
		vs = append(vs, checkReads(h, everWritten, round)...)
		vs = append(vs, checkReadLinearizability(rec.Clock(), baseline, h, round)...)
		vs = append(vs, checkScanAgreement(byLookup, byScan, round)...)

		res.Rounds = append(res.Rounds, RoundReport{
			Round: round, Plan: plan.String(), Crashed: crashed,
			Flushes:   pool.FlushCalls() - flushStart,
			Completed: completed, InFlight: inFlight,
			Replayed: st.EntriesReplayed, Dropped: st.EntriesDropped,
			TornLines: torn,
		})
		if plan.Kind == "calibrate" || flushBudget == 0 {
			flushBudget = pool.FlushCalls() - flushStart
		}
		if len(vs) > 0 {
			res.Violations = append(res.Violations, vs...)
			return res, nil
		}
		baseline = byLookup
		tr = rec
	}
	tr.Freeze()
	return res, nil
}

// runWorker drives one goroutine's share of the round's workload,
// recording every operation. It returns a non-nil error only for real
// tree errors (allocation failure); a simulated power failure ends the
// loop normally with the dying op left in-flight.
func runWorker(tr *core.Tree, w *core.Worker, wid, round int, seed int64, cfg Config, out *[]Op) error {
	rng := rand.New(rand.NewSource(seed))
	clock := tr.Clock()
	socket := wid % cfg.Sockets
	pool := tr.Pool()
	ops := make([]Op, 0, cfg.OpsPerThread)
	defer func() { *out = ops }()

	// Batched mode: writes stage here and go through one ApplyBatch
	// group commit per cfg.BatchSize. An op is "invoked" only when its
	// Apply starts — staged ops the crash strands before that were
	// never issued to the tree and are not recorded.
	batched := cfg.BatchSize > 1
	var staged []Op
	var stagedOps []core.BatchOp
	applyStaged := func() error {
		if len(staged) == 0 {
			return nil
		}
		invoke := clock.Now(socket)
		died := false
		err := func() (opErr error) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.PowerFailure); !ok {
						panic(r)
					}
					died = true
				}
			}()
			opErr = w.ApplyBatch(stagedOps)
			return
		}()
		if err != nil {
			return err
		}
		ret := clock.Now(socket)
		for i := range staged {
			staged[i].Invoke = invoke
			if !died {
				staged[i].Return = ret
				staged[i].Done = true
			}
			ops = append(ops, staged[i])
		}
		staged = staged[:0]
		stagedOps = stagedOps[:0]
		return nil
	}

	var scanBuf [32]core.KV
	for seq := 0; seq < cfg.OpsPerThread; seq++ {
		if pool.FaultFired() {
			break // the machine is dead; no new invocations
		}
		key := 1 + rng.Uint64()%cfg.KeySpace
		op := Op{Worker: wid, Seq: seq, Key: key}
		switch r := rng.Intn(100); {
		case r < 60:
			op.Kind = OpUpsert
			op.Value = uniqueValue(round, wid, seq)
		case r < 75:
			op.Kind = OpDelete
		case r < 95:
			op.Kind = OpLookup
		default:
			op.Kind = OpScan
		}

		if batched && (op.Kind == OpUpsert || op.Kind == OpDelete) {
			staged = append(staged, op)
			stagedOps = append(stagedOps, core.BatchOp{
				Key: op.Key, Value: op.Value, Delete: op.Kind == OpDelete,
			})
			if len(staged) >= cfg.BatchSize {
				if err := applyStaged(); err != nil {
					return err
				}
			}
			continue
		}

		op.Invoke = clock.Now(socket)
		died := false
		err := func() (opErr error) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(pmem.PowerFailure); !ok {
						panic(r)
					}
					died = true
				}
			}()
			switch op.Kind {
			case OpUpsert:
				opErr = w.Upsert(op.Key, op.Value)
			case OpDelete:
				opErr = w.Delete(op.Key)
			case OpLookup:
				op.Value, op.Found = w.Lookup(op.Key)
			case OpScan:
				n := w.Scan(op.Key, len(scanBuf), scanBuf[:])
				// Record the observed pairs (copied out of the reused
				// buffer) so the read oracle can attribute each one.
				op.Observed = make([][2]uint64, n)
				for i, kv := range scanBuf[:n] {
					op.Observed[i] = [2]uint64{kv.Key, kv.Value}
				}
			}
			return
		}()
		if err != nil {
			return err
		}
		if !died {
			op.Return = clock.Now(socket)
			op.Done = true
		}
		ops = append(ops, op)
		if died {
			break
		}
	}
	// Flush the leftover staged group — unless the machine already died,
	// in which case those ops were never invoked and are dropped.
	if batched && !pool.FaultFired() {
		if err := applyStaged(); err != nil {
			return err
		}
	}
	return nil
}

// uniqueValue makes every written value globally unique across the
// whole run, so a recovered word identifies the exact write that
// produced it. Stays below core.MaxValue.
func uniqueValue(round, wid, seq int) uint64 {
	return uint64(round+1)<<40 | uint64(wid+1)<<28 | uint64(seq+1)
}

// snapshot reads the recovered tree's full state twice — once by
// per-key lookups, once by a range scan — for the oracle and the
// read-path agreement check. Value maps omit absent keys.
func snapshot(tr *core.Tree, keySpace uint64) (byLookup, byScan map[uint64]uint64) {
	w := tr.NewWorker(0)
	byLookup = make(map[uint64]uint64)
	for k := uint64(1); k <= keySpace; k++ {
		if v, ok := w.Lookup(k); ok {
			byLookup[k] = v
		}
	}
	out := make([]core.KV, keySpace+8)
	n := w.Scan(1, len(out), out)
	byScan = make(map[uint64]uint64, n)
	for _, kv := range out[:n] {
		byScan[kv.Key] = kv.Value
	}
	return byLookup, byScan
}
