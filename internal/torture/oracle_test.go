package torture

import (
	"strings"
	"testing"

	"cclbtree/internal/ordo"
)

// oracle tests drive checkDurablePrefix with hand-built histories and
// explicit ticks. boundary 16 matches the default ORDO window; ticks
// are spaced ≥ 100 apart where "definitely ordered" is intended.
func testClock() *ordo.Clock { return ordo.New(1, 16) }

func mkHistory(ops []Op) *history {
	per := [][]Op{ops}
	return newHistory(per)
}

func write(worker, seq int, key, value uint64, invoke, ret uint64) Op {
	op := Op{Worker: worker, Seq: seq, Kind: OpUpsert, Key: key, Value: value, Invoke: invoke}
	if ret != 0 {
		op.Return = ret
		op.Done = true
	}
	return op
}

func TestOracleAcceptsLatestCompletedWrite(t *testing.T) {
	h := mkHistory([]Op{
		write(0, 0, 1, 0xA, 100, 200),
		write(0, 1, 1, 0xB, 300, 400),
	})
	vs := checkDurablePrefix(testClock(), nil, h, map[uint64]uint64{1: 0xB}, 0)
	if len(vs) != 0 {
		t.Fatalf("valid state flagged: %v", vs)
	}
}

func TestOracleCatchesLostCompletedWrite(t *testing.T) {
	h := mkHistory([]Op{
		write(0, 0, 1, 0xA, 100, 200),
		write(0, 1, 1, 0xB, 300, 400), // completed, definitely after A
	})
	// Recovered A: B — a completed write — was lost.
	vs := checkDurablePrefix(testClock(), nil, h, map[uint64]uint64{1: 0xA}, 0)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "lost update") {
		t.Fatalf("lost completed write not caught: %v", vs)
	}
	// Recovered absent: even worse, also a violation.
	vs = checkDurablePrefix(testClock(), nil, h, map[uint64]uint64{}, 0)
	if len(vs) != 1 {
		t.Fatalf("lost key not caught: %v", vs)
	}
}

func TestOracleInFlightWriteIsAtomic(t *testing.T) {
	h := mkHistory([]Op{
		write(0, 0, 1, 0xA, 100, 200),
		write(0, 1, 1, 0xB, 300, 0), // in flight at the crash
	})
	// Both "landed" and "did not land" are legal.
	for _, rec := range []map[uint64]uint64{{1: 0xA}, {1: 0xB}} {
		if vs := checkDurablePrefix(testClock(), nil, h, rec, 0); len(vs) != 0 {
			t.Fatalf("legal in-flight outcome %v flagged: %v", rec, vs)
		}
	}
	// A value from nowhere is not.
	vs := checkDurablePrefix(testClock(), nil, h, map[uint64]uint64{1: 0xEE}, 0)
	if len(vs) != 1 || !strings.Contains(vs[0].Reason, "fabricated") {
		t.Fatalf("fabricated value not caught: %v", vs)
	}
}

func TestOracleConcurrentWritesEitherOrder(t *testing.T) {
	// Two completed writes whose windows overlap: both linearization
	// orders are legal, so both values are acceptable; the pre-state is
	// not (both writes completed).
	h := mkHistory([]Op{
		write(0, 0, 1, 0xA, 100, 300),
		write(1, 0, 1, 0xB, 200, 250),
	})
	for _, rec := range []map[uint64]uint64{{1: 0xA}, {1: 0xB}} {
		if vs := checkDurablePrefix(testClock(), nil, h, rec, 0); len(vs) != 0 {
			t.Fatalf("concurrent outcome %v flagged: %v", rec, vs)
		}
	}
	if vs := checkDurablePrefix(testClock(), nil, h, map[uint64]uint64{}, 0); len(vs) != 1 {
		t.Fatal("losing both concurrent completed writes must be a violation")
	}
}

func TestOracleBoundaryUncertaintyIsConcurrent(t *testing.T) {
	// B invoked 10 ticks after A returned — inside the 16-tick ORDO
	// boundary, so the order is uncertain and A surviving is legal.
	h := mkHistory([]Op{
		write(0, 0, 1, 0xA, 100, 200),
		write(1, 0, 1, 0xB, 210, 220),
	})
	if vs := checkDurablePrefix(testClock(), nil, h, map[uint64]uint64{1: 0xA}, 0); len(vs) != 0 {
		t.Fatalf("within-boundary order treated as definite: %v", vs)
	}
}

func TestOracleBaselineCarriesAcrossRounds(t *testing.T) {
	base := map[uint64]uint64{5: 0xBA5E}
	// Untouched key keeps its baseline value.
	h := mkHistory(nil)
	if vs := checkDurablePrefix(testClock(), base, h, map[uint64]uint64{5: 0xBA5E}, 1); len(vs) != 0 {
		t.Fatalf("baseline state flagged: %v", vs)
	}
	// Losing it with no writes this round is a violation.
	if vs := checkDurablePrefix(testClock(), base, h, map[uint64]uint64{}, 1); len(vs) != 1 {
		t.Fatal("lost baseline key not caught")
	}
	// A completed delete makes absence legal — and the baseline stale.
	h = mkHistory([]Op{{Worker: 0, Kind: OpDelete, Key: 5, Invoke: 100, Return: 200, Done: true}})
	if vs := checkDurablePrefix(testClock(), base, h, map[uint64]uint64{}, 1); len(vs) != 0 {
		t.Fatalf("completed delete flagged: %v", vs)
	}
	if vs := checkDurablePrefix(testClock(), base, h, map[uint64]uint64{5: 0xBA5E}, 1); len(vs) != 1 {
		t.Fatal("baseline surviving a definitely-later completed delete not caught")
	}
}

func TestOracleReadValidation(t *testing.T) {
	ever := map[uint64]map[uint64]bool{1: {0xA: true}}
	h := mkHistory([]Op{
		{Worker: 0, Kind: OpLookup, Key: 1, Value: 0xA, Found: true, Invoke: 10, Return: 20, Done: true},
		{Worker: 1, Kind: OpLookup, Key: 1, Value: 0xFF, Found: true, Invoke: 10, Return: 20, Done: true},
	})
	vs := checkReads(h, ever, 0)
	if len(vs) != 1 || vs[0].Got != 0xFF {
		t.Fatalf("fabricated read not caught (or false positive): %v", vs)
	}
}

func TestOracleScanAgreement(t *testing.T) {
	look := map[uint64]uint64{1: 0xA, 2: 0xB}
	scan := map[uint64]uint64{1: 0xA, 3: 0xC}
	vs := checkScanAgreement(look, scan, 0)
	if len(vs) != 2 {
		t.Fatalf("want 2 divergences (missing 2, extra 3), got %v", vs)
	}
}
