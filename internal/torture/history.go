package torture

// OpKind identifies one workload operation.
type OpKind uint8

const (
	OpUpsert OpKind = iota
	OpDelete
	OpLookup
	OpScan
)

func (k OpKind) String() string {
	switch k {
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	case OpLookup:
		return "lookup"
	case OpScan:
		return "scan"
	}
	return "?"
}

// Op is one recorded operation in a worker's history. Invoke and Return
// are ORDO ticks from the tree's clock — the same timestamp domain the
// WAL stamps entries with, so "definitely before the crash" can be
// decided with the clock's uncertainty boundary rather than wall time.
type Op struct {
	Worker int    `json:"worker"`
	Seq    int    `json:"seq"`
	Kind   OpKind `json:"kind"`
	Key    uint64 `json:"key"`
	// Value is the written value for upserts (deletes write the
	// tombstone, recorded as 0) and the observed value for lookups.
	Value uint64 `json:"value"`
	// Found is the lookup outcome (meaningless for writes).
	Found bool `json:"found,omitempty"`
	// Observed records a scan's returned key/value pairs, so the read
	// oracle can attribute each one to a write whose real-time window
	// is consistent with the scan's.
	Observed [][2]uint64 `json:"observed,omitempty"`
	Invoke   uint64      `json:"invoke"`
	Return   uint64      `json:"return,omitempty"`
	// Done marks operations whose call returned normally; an undone op
	// was in flight when the power failed and may land atomically or
	// not at all.
	Done bool `json:"done"`
}

// isWrite reports whether the op mutates its key's register (deletes
// write the tombstone, i.e. "absent").
func (o *Op) isWrite() bool { return o.Kind == OpUpsert || o.Kind == OpDelete }

// writtenValue is the register value the op installs: the payload for
// upserts, absent (0) for deletes.
func (o *Op) writtenValue() uint64 {
	if o.Kind == OpDelete {
		return 0
	}
	return o.Value
}

// history is one round's merged op log plus the per-key index the
// oracle consumes.
type history struct {
	ops     []Op
	writes  map[uint64][]*Op // key -> writes, any order
	lookups []*Op
	scans   []*Op
}

func newHistory(perWorker [][]Op) *history {
	h := &history{writes: map[uint64][]*Op{}}
	for _, ws := range perWorker {
		h.ops = append(h.ops, ws...)
	}
	for i := range h.ops {
		op := &h.ops[i]
		switch {
		case op.isWrite():
			h.writes[op.Key] = append(h.writes[op.Key], op)
		case op.Kind == OpLookup && op.Done:
			h.lookups = append(h.lookups, op)
		case op.Kind == OpScan && op.Done:
			h.scans = append(h.scans, op)
		}
	}
	return h
}
