package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Artifact is the JSON failure record ccltorture writes when a run
// fails: everything needed to re-run the failing schedule with one
// command line.
type Artifact struct {
	Config     Config        `json:"config"`
	Rounds     []RoundReport `json:"rounds"`
	Violations []Violation   `json:"violations"`
	// ReproCmd replays this exact configuration.
	ReproCmd string `json:"repro_cmd"`
}

// NewArtifact builds the failure record for a failed result.
func NewArtifact(res *Result) *Artifact {
	c := res.Config
	cmd := fmt.Sprintf("ccltorture -seed %d -threads %d -rounds %d -ops %d -keys %d -gc %s",
		c.Seed, c.Threads, c.Rounds, c.OpsPerThread, c.KeySpace, c.GC)
	if c.EADR {
		cmd += " -eadr"
	}
	if c.Torn {
		cmd += " -torn"
	}
	if c.BatchSize > 1 {
		cmd += fmt.Sprintf(" -batch %d", c.BatchSize)
	}
	if c.UnsafeSkipWALFence {
		cmd += " -unsafe-skip-wal-fence"
	}
	if c.UnsafeSkipReadRecheck {
		cmd += " -unsafe-skip-read-recheck"
	}
	return &Artifact{
		Config:     c,
		Rounds:     res.Rounds,
		Violations: res.Violations,
		ReproCmd:   cmd,
	}
}

// Write stores the artifact as torture-seed<N>.json under dir
// (creating it) and returns the path.
func (a *Artifact) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("torture-seed%d.json", a.Config.Seed))
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadArtifact loads a failure record; ccltorture -replay uses it to
// re-run the recorded configuration.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("torture: bad artifact %s: %w", path, err)
	}
	return &a, nil
}
