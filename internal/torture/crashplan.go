package torture

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"cclbtree/internal/pmem"
)

// A Plan decides where in a round the power fails. Two families:
//
//   - seq plans fire on the Nth flush of the round, N drawn uniformly
//     from the previous round's observed flush count — unbiased
//     coverage of every fault site;
//   - scope plans fire on the Nth flush carrying a specific
//     attribution scope, aiming the failure into structurally
//     interesting windows: mid-WAL-append, mid-split, mid-GC,
//     mid-batch-flush, mid-metadata-update. Attribution comes from the
//     same Scope tags the observability layer uses, so the adversarial
//     placement needs no knowledge of core's internals.
//
// A plan that never matches (scope traffic absent, N beyond the
// round's flushes) yields a clean quiescent round: the workload
// completes, the machine is crashed at rest, and the oracle still
// checks that everything completed is durable.
type Plan struct {
	Kind  string     `json:"kind"` // "seq", "scope" or "calibrate"
	Scope pmem.Scope `json:"scope,omitempty"`
	N     int64      `json:"n"` // fire on the Nth matching flush (1-based)
}

func (p Plan) String() string {
	switch p.Kind {
	case "scope":
		return fmt.Sprintf("scope[%s]#%d", scopeName(p.Scope), p.N)
	case "seq":
		return fmt.Sprintf("seq#%d", p.N)
	}
	return p.Kind
}

func scopeName(s pmem.Scope) string {
	names := pmem.ScopeNames()
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("scope%d", int(s))
}

// predicate compiles the plan into a pmem.FailWhen trigger. The count
// is relative to arming, not to the pool's global flush ordinal, so
// plans compose across rounds.
func (p Plan) predicate() func(pmem.FaultPoint) bool {
	if p.Kind == "calibrate" {
		return nil
	}
	var matched atomic.Int64
	n := p.N
	if p.Kind == "scope" {
		scope := p.Scope
		return func(fp pmem.FaultPoint) bool {
			return fp.Scope == scope && matched.Add(1) == n
		}
	}
	return func(fp pmem.FaultPoint) bool {
		return matched.Add(1) == n
	}
}

// adversarialScopes are the windows worth aiming at, in rotation.
var adversarialScopes = []pmem.Scope{
	pmem.ScopeWAL,
	pmem.ScopeSplit,
	pmem.ScopeGC,
	pmem.ScopeLeafBuf,
	pmem.ScopeMeta,
}

// planForRound picks round r's crash plan. Round 0 always calibrates
// (full workload, quiescent crash) to measure the flush budget that
// seq plans draw from; after that, seq and scope plans alternate.
func planForRound(rng *rand.Rand, r int, flushBudget int64) Plan {
	if r == 0 || flushBudget <= 0 {
		return Plan{Kind: "calibrate"}
	}
	if r%2 == 1 {
		return Plan{Kind: "seq", N: 1 + rng.Int63n(flushBudget)}
	}
	scope := adversarialScopes[(r/2-1+len(adversarialScopes))%len(adversarialScopes)]
	// Small N lands inside the first few occurrences of the scope's
	// window; scopes fire far less often than raw flushes.
	return Plan{Kind: "scope", Scope: scope, N: 1 + rng.Int63n(16)}
}
