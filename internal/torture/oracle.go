package torture

import (
	"fmt"
	"sort"

	"cclbtree/internal/ordo"
)

// The durable-prefix linearizability oracle.
//
// The workload is a set of per-key registers written blindly (every
// written value is globally unique, so a recovered word identifies the
// exact write that produced it). After a crash and recovery, the state
// of key k must be explainable as the latest write in SOME
// linearization of k's history that is consistent with real time and
// with durability:
//
//   - every write that RETURNED before the power failure is durable —
//     it may only be superseded by another write, never silently lost;
//   - a write in flight at the failure is atomic: its value is either
//     fully there or fully absent, and it may legally linearize after
//     completed writes it overlapped;
//   - a value is never fabricated: the recovered word must match a
//     write that was actually invoked (or the key's pre-round state).
//
// Concretely, the recovered value must equal the value of a candidate
// write that is not *definitely overwritten*: w is definitely
// overwritten when some completed write w' was invoked definitely
// after w returned (ORDO's After — the gap exceeds the uncertainty
// boundary). In-flight writes have no return point, so nothing
// definitely follows them; the pre-round state is treated as a virtual
// write that returned before everything.

// Violation is one oracle finding.
type Violation struct {
	Round  int    `json:"round"`
	Key    uint64 `json:"key"`
	Got    uint64 `json:"got"`
	Reason string `json:"reason"`
	// Candidates lists the values the oracle would have accepted.
	Candidates []uint64 `json:"candidates,omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("round %d key %#x: %s (recovered %#x, acceptable %v)",
		v.Round, v.Key, v.Reason, v.Got, v.Candidates)
}

// checkDurablePrefix validates one round's recovered state against the
// history. baseline is the durable state the round started from (the
// previous recovery's snapshot; absent keys omitted). recovered is the
// post-recovery snapshot, value 0 meaning absent.
func checkDurablePrefix(clock *ordo.Clock, baseline map[uint64]uint64, h *history, recovered map[uint64]uint64, round int) []Violation {
	keys := map[uint64]bool{}
	for k := range baseline {
		keys[k] = true
	}
	for k := range h.writes {
		keys[k] = true
	}
	for k := range recovered {
		keys[k] = true
	}
	ordered := make([]uint64, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var out []Violation
	for _, k := range ordered {
		got := recovered[k]
		writes := h.writes[k]

		// ruledOut: w (a completed write or the virtual initial state,
		// with return tick ret) is definitely overwritten when a
		// completed write was invoked definitely after ret.
		ruledOut := func(ret uint64, self *Op) bool {
			for _, w := range writes {
				if w != self && w.Done && clock.After(w.Invoke, ret) {
					return true
				}
			}
			return false
		}

		var accept []uint64
		seen := map[uint64]bool{}
		add := func(v uint64) {
			if !seen[v] {
				seen[v] = true
				accept = append(accept, v)
			}
		}
		if !ruledOut(0, nil) {
			add(baseline[k]) // virtual initial write (0 = absent)
		}
		for _, w := range writes {
			if w.Done && ruledOut(w.Return, w) {
				continue
			}
			add(w.writtenValue())
		}

		if !seen[got] {
			reason := "recovered value matches no invoked write (fabricated or torn)"
			if wasEverWritten(writes, baseline, k, got) {
				reason = "lost update: a later completed write definitely overwrote this value"
			}
			out = append(out, Violation{
				Round: round, Key: k, Got: got,
				Reason: reason, Candidates: accept,
			})
		}
	}
	return out
}

// CheckDurablePrefix runs the durable-prefix oracle over an externally
// recorded history: perWorker holds each worker's op log (Invoke and
// Return in clock's tick domain), baseline the durable state the round
// began from, and recovered the post-recovery snapshot (absent keys
// omitted, value 0 meaning absent). Exported for crash harnesses
// outside this package — the sharded-DB crash test partitions one
// multi-shard history by routing shard and checks each shard's tree
// against its own clock independently.
func CheckDurablePrefix(clock *ordo.Clock, baseline map[uint64]uint64, perWorker [][]Op, recovered map[uint64]uint64, round int) []Violation {
	return checkDurablePrefix(clock, baseline, newHistory(perWorker), recovered, round)
}

// wasEverWritten distinguishes "stale but real" from "fabricated".
func wasEverWritten(writes []*Op, baseline map[uint64]uint64, k, v uint64) bool {
	if v == 0 || baseline[k] == v {
		return true // absent / pre-round state is always "real"
	}
	for _, w := range writes {
		if w.writtenValue() == v {
			return true
		}
	}
	return false
}

// checkReads validates completed lookups against the set of values
// that were ever installed for their key: a read must never observe a
// value no write produced (fabrication, torn exposure, or cross-key
// leakage). everWritten accumulates across rounds; baseline covers the
// round's starting state.
func checkReads(h *history, everWritten map[uint64]map[uint64]bool, round int) []Violation {
	var out []Violation
	for _, op := range h.lookups {
		if !op.Found {
			continue
		}
		if vs := everWritten[op.Key]; vs == nil || !vs[op.Value] {
			out = append(out, Violation{
				Round: round, Key: op.Key, Got: op.Value,
				Reason: fmt.Sprintf("worker %d lookup observed a value never written to this key", op.Worker),
			})
		}
	}
	return out
}

// checkReadLinearizability validates every completed optimistic read
// (lookup or scan observation) against real-time order: the value a
// read r observed for key k must be attributable to a write w whose
// invoke/return window is consistent with r's ORDO window —
//
//   - w was not invoked definitely after r returned (a read cannot see
//     the future), and
//   - w was not definitely overwritten before r began: no completed
//     write w′ was invoked definitely after w returned AND returned
//     definitely before r was invoked.
//
// The round's starting state acts as a virtual write that returned
// before everything (return tick 0). In-flight writes have no return
// point, so nothing definitely follows them and they stay candidates.
// Both "definitely" relations use the ORDO uncertainty boundary, so
// the check is conservative: an overlap is never flagged, only reads
// that returned a value provably stale (the seqlock recheck failed to
// retry a torn section) or provably fabricated. Reads are validated
// per-round only — the round's history plus its recovered baseline is
// a complete candidate set, because earlier rounds' superseded values
// are absent from the recovered image.
func checkReadLinearizability(clock *ordo.Clock, baseline map[uint64]uint64, h *history, round int) []Violation {
	legal := func(r *Op, key, got uint64) bool {
		writes := h.writes[key]
		// overwrittenBeforeRead: a completed write was invoked
		// definitely after ret and returned definitely before r began.
		overwrittenBeforeRead := func(ret uint64) bool {
			for _, w2 := range writes {
				if w2.Done && clock.After(w2.Invoke, ret) && clock.After(r.Invoke, w2.Return) {
					return true
				}
			}
			return false
		}
		// Virtual baseline write (value 0 = key absent at round start).
		if baseline[key] == got && !overwrittenBeforeRead(0) {
			return true
		}
		for _, w := range writes {
			if w.writtenValue() != got {
				continue
			}
			if clock.After(w.Invoke, r.Return) {
				continue // invoked definitely after the read ended
			}
			if w.Done && overwrittenBeforeRead(w.Return) {
				continue
			}
			return true
		}
		return false
	}

	var out []Violation
	for _, r := range h.lookups {
		got := uint64(0) // absent reads observe the tombstone register
		if r.Found {
			got = r.Value
		}
		if !legal(r, r.Key, got) {
			out = append(out, Violation{
				Round: round, Key: r.Key, Got: got,
				Reason: fmt.Sprintf("worker %d lookup observed a value outside its read window (stale or torn optimistic read)", r.Worker),
			})
		}
	}
	for _, r := range h.scans {
		for _, kv := range r.Observed {
			if !legal(r, kv[0], kv[1]) {
				out = append(out, Violation{
					Round: round, Key: kv[0], Got: kv[1],
					Reason: fmt.Sprintf("worker %d scan observed a value outside its read window (stale or torn optimistic read)", r.Worker),
				})
			}
		}
	}
	return out
}

// checkScanAgreement cross-checks the post-recovery scan snapshot
// against per-key lookups: both read paths must agree on the live key
// set and values. Divergence means the leaf metadata (bitmap vs
// fingerprints vs slots) recovered inconsistently.
func checkScanAgreement(byLookup, byScan map[uint64]uint64, round int) []Violation {
	var out []Violation
	for k, v := range byLookup {
		if sv, ok := byScan[k]; !ok {
			out = append(out, Violation{Round: round, Key: k, Got: v,
				Reason: "key visible via lookup but missing from scan"})
		} else if sv != v {
			out = append(out, Violation{Round: round, Key: k, Got: sv,
				Reason: fmt.Sprintf("scan value %#x disagrees with lookup value %#x", sv, v)})
		}
	}
	for k, sv := range byScan {
		if _, ok := byLookup[k]; !ok {
			out = append(out, Violation{Round: round, Key: k, Got: sv,
				Reason: "key visible via scan but absent via lookup"})
		}
	}
	return out
}
