package torture

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestTortureShort is the tier-1 entry point: a few crash-recover
// rounds per configuration, small enough for -short and -race runs.
func TestTortureShort(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"adr-locality", Config{Seed: 1, Threads: 4, Rounds: 4, OpsPerThread: 250}},
		{"adr-gc-off", Config{Seed: 2, Threads: 4, Rounds: 3, OpsPerThread: 200, GC: "off"}},
		{"adr-naive-gc", Config{Seed: 3, Threads: 4, Rounds: 3, OpsPerThread: 200, GC: "naive"}},
		{"eadr", Config{Seed: 4, Threads: 4, Rounds: 4, OpsPerThread: 250, EADR: true}},
		{"adr-torn", Config{Seed: 5, Threads: 4, Rounds: 4, OpsPerThread: 250, Torn: true}},
		{"single-thread", Config{Seed: 6, Threads: 1, Rounds: 4, OpsPerThread: 300}},
		{"batched", Config{Seed: 7, Threads: 4, Rounds: 4, OpsPerThread: 250, BatchSize: 16}},
		{"batched-torn", Config{Seed: 8, Threads: 4, Rounds: 4, OpsPerThread: 250, BatchSize: 32, Torn: true}},
		{"batched-eadr", Config{Seed: 9, Threads: 4, Rounds: 3, OpsPerThread: 200, BatchSize: 16, EADR: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				for _, v := range res.Violations {
					t.Error(v)
				}
			}
			if res.OpsCompleted == 0 {
				t.Fatal("no operations completed")
			}
		})
	}
}

// TestTortureCatchesSkippedFence proves the oracle catches a real
// durability bug: with UnsafeSkipWALFence the WAL entry of every
// buffered insert is flushed but never fenced, so Pool.Crash rolls it
// back and completed upserts vanish. The acceptance budget for the
// catch is 60 seconds; in practice the very first crash exposes it.
func TestTortureCatchesSkippedFence(t *testing.T) {
	start := time.Now()
	res, err := Run(Config{
		Seed: 42, Threads: 2, Rounds: 3, OpsPerThread: 200,
		GC: "off", UnsafeSkipWALFence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("oracle missed the planted skip-fence durability bug")
	}
	found := false
	for _, v := range res.Violations {
		if v.Reason != "" && v.Key != 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("violations carry no key-level detail: %v", res.Violations)
	}
	if d := time.Since(start); d > 60*time.Second {
		t.Fatalf("bug took %v to catch; budget is 60s", d)
	}
	t.Logf("planted bug caught in %v after %d round(s): %v",
		time.Since(start), len(res.Rounds), res.Violations[0])
}

// TestTortureCatchesSkippedReadRecheck proves the read-linearizability
// oracle catches a real seqlock bug: with UnsafeSkipReadRecheck every
// optimistic reader ignores its re-validation, so a read torn by a
// concurrent writer — key word from one version of a buffer slot,
// value word from another — is returned as if consistent. The oracle
// must attribute every observed value to a write on that key whose
// real-time window fits the read's; a torn pair fails that
// attribution. Budget for the catch is 60 seconds, mirroring the
// skip-fence self-test; in practice the first seeds expose it.
func TestTortureCatchesSkippedReadRecheck(t *testing.T) {
	start := time.Now()
	deadline := start.Add(55 * time.Second)
	for seed := int64(4200); time.Now().Before(deadline); seed++ {
		res, err := Run(Config{
			Seed: seed, Threads: 4, Rounds: 2, OpsPerThread: 3000,
			KeySpace: 48, GC: "off", UnsafeSkipReadRecheck: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed() {
			continue
		}
		// The planted bug corrupts only reads — recovery state is
		// untouched — so the violations must be read attributions.
		for _, v := range res.Violations {
			if !strings.Contains(v.Reason, "observed") {
				t.Fatalf("skip-recheck produced a non-read violation: %v", v)
			}
		}
		if d := time.Since(start); d > 60*time.Second {
			t.Fatalf("bug took %v to catch; budget is 60s", d)
		}
		t.Logf("planted read bug caught in %v at seed %d: %v",
			time.Since(start), seed, res.Violations[0])
		return
	}
	t.Fatal("oracle missed the planted skip-recheck read bug within the 60s budget")
}

// TestTortureArtifactRoundTrip checks the failure artifact pipeline:
// a failed run serializes to JSON, reads back identically, and its
// config re-runs to the same verdict.
func TestTortureArtifactRoundTrip(t *testing.T) {
	// Seed 1 fails in the calibration round (quiescent crash, one
	// thread), so the whole failing schedule is deterministic.
	cfg := Config{Seed: 1, Threads: 1, Rounds: 2, OpsPerThread: 120,
		GC: "off", UnsafeSkipWALFence: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("expected a failing run to build the artifact from")
	}
	dir := t.TempDir()
	path, err := NewArtifact(res).Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Config != res.Config {
		t.Fatalf("config did not round-trip: %+v vs %+v", a.Config, res.Config)
	}
	if len(a.Violations) == 0 || a.ReproCmd == "" {
		t.Fatal("artifact missing violations or repro command")
	}
	// Replay: single-threaded with the same seed is fully
	// deterministic, so the re-run must fail the same way.
	res2, err := Run(a.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Failed() {
		t.Fatal("replayed config did not reproduce the failure")
	}
	if res2.Violations[0].Key != res.Violations[0].Key {
		t.Fatalf("replay diverged: first violation key %#x vs %#x",
			res2.Violations[0].Key, res.Violations[0].Key)
	}
}

// TestTortureSoak is the long configuration — minutes of wall time —
// gated behind an explicit opt-in (CCL_TORTURE_SOAK=seconds) on top of
// the usual -short guard.
func TestTortureSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	secs, _ := strconv.Atoi(os.Getenv("CCL_TORTURE_SOAK"))
	if secs <= 0 {
		t.Skip("set CCL_TORTURE_SOAK=<seconds> to run the soak")
	}
	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	seed := int64(1000)
	for time.Now().Before(deadline) {
		for _, eadr := range []bool{false, true} {
			cfg := Config{Seed: seed, Threads: 8, Rounds: 6, OpsPerThread: 500,
				EADR: eadr, Torn: !eadr}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				p, _ := NewArtifact(res).Write(filepath.Join(os.TempDir(), "ccltorture"))
				t.Fatalf("seed %d failed (artifact %s): %v", seed, p, res.Violations[0])
			}
			seed++
		}
	}
}
