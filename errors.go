package cclbtree

import (
	"errors"

	"cclbtree/internal/core"
)

// Sentinel errors returned (wrapped) by the write paths. Check with
// errors.Is; the wrapped messages carry the operation name.
var (
	// ErrZeroKey reports a zero fixed key or an empty variable key.
	// Zero is reserved: it is the probe sentinel in fixed mode and an
	// empty blob has no indirection word in VarKV mode.
	ErrZeroKey = core.ErrZeroKey

	// ErrVarKVRequired reports a variable-size operation (PutVar,
	// DeleteVar, a byte-slice Batch op, ...) on a tree built without
	// Config.VarKV.
	ErrVarKVRequired = core.ErrVarKVRequired

	// ErrFixedKVRequired reports a fixed 8 B operation (Put, Delete,
	// a word Batch op, ...) on a tree built with Config.VarKV.
	ErrFixedKVRequired = core.ErrFixedKVRequired

	// ErrClosed reports a write issued after Close.
	ErrClosed = core.ErrClosed
)

// Sentinel errors of the serving tier (internal/server, cmd/cclserve).
// They live here rather than in the server package so clients checking
// errors.Is need only the public API.
var (
	// ErrShardClosed reports an operation routed to a shard whose
	// commit lane has shut down (server draining or already stopped).
	ErrShardClosed = errors.New("cclbtree: shard closed")

	// ErrBackpressure reports an operation rejected because the target
	// shard's coalescing queue is full. The client should back off and
	// retry; open-loop load generators count these as shed load.
	ErrBackpressure = errors.New("cclbtree: backpressure: shard queue full")
)
