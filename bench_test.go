// Benchmark targets: one per table and figure of the paper's
// evaluation (§5). Each regenerates its experiment at a reduced scale
// and reports headline numbers as benchmark metrics; run with -v to see
// the full tables. The cclbench CLI runs the same experiments at any
// scale.
//
//	go test -bench=BenchmarkFig10 -benchmem
//	go test -bench=. -benchmem            # everything (several minutes)
package cclbtree_test

import (
	"strconv"
	"strings"
	"testing"

	"cclbtree"
	"cclbtree/internal/bench"
)

// benchScale keeps `go test -bench=.` in the minutes range.
func benchScale() bench.Scale {
	return bench.Scale{
		Warm:        20_000,
		Ops:         20_000,
		Threads:     []int{2, 8, 24},
		MainThreads: 16,
		ScanLen:     50,
		Seed:        1,
	}
}

// runExperiment executes a paper experiment once per benchmark
// iteration and logs its tables.
func runExperiment(b *testing.B, name string) []*bench.Table {
	b.Helper()
	e, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	var tables []*bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = e.Run(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		var sb strings.Builder
		for _, t := range tables {
			t.Fprint(&sb)
		}
		b.Log("\n" + sb.String())
	}
	return tables
}

// lastCell parses the last column of the row whose first cell matches
// name (the headline series for metrics).
func lastCell(tables []*bench.Table, row string) float64 {
	for _, t := range tables {
		for _, r := range t.Rows {
			if len(r) > 1 && r[0] == row {
				v, err := strconv.ParseFloat(r[len(r)-1], 64)
				if err == nil {
					return v
				}
			}
		}
	}
	return 0
}

func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15a(b *testing.B) { runExperiment(b, "fig15a") }
func BenchmarkFig15b(b *testing.B) { runExperiment(b, "fig15b") }
func BenchmarkFig15c(b *testing.B) { runExperiment(b, "fig15c") }
func BenchmarkFig15d(b *testing.B) { runExperiment(b, "fig15d") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { runExperiment(b, "fig19") }

func BenchmarkFig3(b *testing.B) {
	tables := runExperiment(b, "fig3")
	// Headline: CCL-BTree's XBI-amplification (third column).
	for _, t := range tables {
		for _, r := range t.Rows {
			if r[0] == "CCL-BTree" {
				if v, err := strconv.ParseFloat(r[2], 64); err == nil {
					b.ReportMetric(v, "XBI-amp")
				}
			}
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	tables := runExperiment(b, "fig10")
	b.ReportMetric(lastCell(tables[:1], "CCL-BTree"), "insert-Mops")
}

func BenchmarkFig13(b *testing.B) {
	tables := runExperiment(b, "fig13")
	b.ReportMetric(lastCell(tables[1:], "+WLog"), "total-XBI")
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkTable3(b *testing.B) {
	tables := runExperiment(b, "table3")
	b.ReportMetric(lastCell(tables, "Scan"), "CCL-scan-Mops")
}

func BenchmarkAblationCache(b *testing.B) { runExperiment(b, "ablation-cache") }
func BenchmarkAblationGC(b *testing.B)    { runExperiment(b, "ablation-gc") }

func BenchmarkExtensionHash(b *testing.B) { runExperiment(b, "extension-hash") }

// BenchmarkCorePut measures the raw public-API insert path (simulated
// PM work included), a conventional micro-benchmark for regressions.
func BenchmarkCorePut(b *testing.B) {
	db, err := cclbtree.New(cclbtree.Config{ChunkBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)*0x9e3779b97f4a7c15&(1<<62-1) | 1
		if err := s.Put(k, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreGet measures the lookup path.
func BenchmarkCoreGet(b *testing.B) {
	db, err := cclbtree.New(cclbtree.Config{ChunkBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	const n = 100_000
	for i := 0; i < n; i++ {
		k := uint64(i)*0x9e3779b97f4a7c15&(1<<62-1) | 1
		if err := s.Put(k, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%n)*0x9e3779b97f4a7c15&(1<<62-1) | 1
		s.Get(k)
	}
}

// BenchmarkCoreScan measures the range-query path.
func BenchmarkCoreScan(b *testing.B) {
	db, err := cclbtree.New(cclbtree.Config{ChunkBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	const n = 100_000
	for i := 1; i <= n; i++ {
		if err := s.Put(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	out := make([]cclbtree.KV, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(uint64(i%n+1), out)
	}
}
