package cclbtree

import (
	"errors"
	"testing"
)

// TestPublicBatchApply covers the Batch/Apply surface end to end:
// mixed puts and deletes in one group commit, staging-order semantics
// for same-key ops, reuse after Reset, and durability across a crash.
func TestPublicBatchApply(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session(0)

	var b Batch
	for i := uint64(1); i <= 500; i++ {
		b.Put(i, i*2)
	}
	b.Delete(250)
	b.Put(250, 9999) // same-key ops take effect in staging order
	if b.Len() != 502 {
		t.Fatalf("Len = %d, want 502", b.Len())
	}
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Delete(100).Delete(200)
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(nil); err != nil {
		t.Fatalf("Apply(nil) = %v", err)
	}

	check := func(s *Session, label string) {
		for i := uint64(1); i <= 500; i++ {
			v, ok := s.Get(i)
			switch i {
			case 100, 200:
				if ok {
					t.Fatalf("%s: deleted key %d present", label, i)
				}
			case 250:
				if !ok || v != 9999 {
					t.Fatalf("%s: key 250 = %d,%v, want 9999", label, v, ok)
				}
			default:
				if !ok || v != i*2 {
					t.Fatalf("%s: key %d = %d,%v", label, i, v, ok)
				}
			}
		}
	}
	check(s, "pre-crash")
	if db.Counters().BatchApplies != 2 {
		t.Fatalf("BatchApplies = %d, want 2", db.Counters().BatchApplies)
	}

	db.Close()
	db.Pool().Crash()
	db2, err := Open(db.Pool(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2.Session(0), "post-crash")
}

// TestPublicBatchErrors pins the sentinel errors at the public
// boundary: every rejection is checkable with errors.Is and leaves the
// tree untouched.
func TestPublicBatchErrors(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session(0)

	var zero Batch
	zero.Put(5, 50).Put(0, 1)
	if err := s.Apply(&zero); !errors.Is(err, ErrZeroKey) {
		t.Fatalf("zero key: %v", err)
	}
	if _, ok := s.Get(5); ok {
		t.Fatal("rejected batch had a side effect")
	}

	var varOp Batch
	varOp.PutVar([]byte("k"), []byte("v"))
	if err := s.Apply(&varOp); !errors.Is(err, ErrVarKVRequired) {
		t.Fatalf("var op on fixed tree: %v", err)
	}

	db.Close()
	var late Batch
	late.Put(1, 1)
	if err := s.Apply(&late); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v", err)
	}

	cfg := smallConfig()
	cfg.VarKV = true
	dbv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbv.Close()
	var fixedOp Batch
	fixedOp.Put(1, 1)
	if err := dbv.Session(0).Apply(&fixedOp); !errors.Is(err, ErrFixedKVRequired) {
		t.Fatalf("fixed op on var tree: %v", err)
	}
}

// TestPublicRangePaging drives the Range iterator across several
// rangeChunk pages and checks early break.
func TestPublicRangePaging(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	const n = 3 * rangeChunk // force multiple Scan pages
	for i := uint64(1); i <= n; i++ {
		if err := s.Put(i*3, i); err != nil {
			t.Fatal(err)
		}
	}

	want := uint64(1)
	for k, v := range s.Range(0) {
		if k != want*3 || v != want {
			t.Fatalf("got %d=%d, want %d=%d", k, v, want*3, want)
		}
		want++
	}
	if want != n+1 {
		t.Fatalf("iterated %d entries, want %d", want-1, n)
	}

	seen := 0
	for range s.Range(1) {
		seen++
		if seen == rangeChunk+5 { // break mid-second-page
			break
		}
	}
	if seen != rangeChunk+5 {
		t.Fatalf("early break saw %d", seen)
	}

	for k := range s.Range(uint64(n)*3 + 1) {
		t.Fatalf("empty range yielded %d", k)
	}
}

// TestPublicRangeVarPaging does the same for byte-ordered iteration.
func TestPublicRangeVarPaging(t *testing.T) {
	cfg := smallConfig()
	cfg.VarKV = true
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	const n = 2*rangeChunk + 17
	for i := 0; i < n; i++ {
		k := []byte{'k', byte(i >> 8), byte(i)}
		if err := s.PutVar(k, k); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	var prev []byte
	for k, v := range s.RangeVar(nil) {
		if string(k) != string(v) {
			t.Fatalf("value mismatch at %q", k)
		}
		if prev != nil && string(k) <= string(prev) {
			t.Fatalf("disorder: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		i++
	}
	if i != n {
		t.Fatalf("iterated %d entries, want %d", i, n)
	}
}
