package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunClean exercises the CLI end to end with one tiny clean run.
func TestRunClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-seed", "11", "-duration", "0", "-threads", "2", "-mode", "adr",
		"-rounds", "2", "-ops", "100", "-out", t.TempDir(),
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "run(s) clean") {
		t.Fatalf("missing summary: %s", out.String())
	}
}

// TestRunFailureWritesArtifactAndReplays plants the skip-fence bug,
// expects exit 1 plus an artifact, then replays the artifact and
// expects the same failure.
func TestRunFailureWritesArtifactAndReplays(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{
		"-seed", "1", "-duration", "0", "-threads", "1", "-mode", "adr",
		"-gc", "off", "-rounds", "2", "-ops", "120", "-keys", "256",
		"-out", dir, "-unsafe-skip-wal-fence",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d (want 1), stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "VIOLATION") || !strings.Contains(errb.String(), "reproduce with") {
		t.Fatalf("missing violation/repro output: %s", errb.String())
	}
	path := filepath.Join(dir, "torture-seed1.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-replay", path, "-out", t.TempDir()}, &out, &errb)
	if code != 1 {
		t.Fatalf("replay exit %d (want 1), stderr: %s", code, errb.String())
	}
}

// TestRunBadFlags covers the error paths.
func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "nvdimm"}, &out, &errb); code != 2 {
		t.Fatalf("bad -mode: exit %d (want 2)", code)
	}
	if code := run([]string{"-replay", "/does/not/exist.json"}, &out, &errb); code != 2 {
		t.Fatalf("bad -replay: exit %d (want 2)", code)
	}
}
