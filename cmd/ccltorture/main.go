// Command ccltorture drives the concurrent crash-recovery torture
// harness (internal/torture) from the command line: seeded randomized
// workloads, power failures placed at randomized and adversarially
// chosen flush points, recovery, and the durable-prefix linearizability
// oracle after every crash.
//
// Default invocation — a five-minute soak at 8 threads, alternating
// ADR and eADR images, seeds advancing from -seed:
//
//	ccltorture
//
// A failing run writes a JSON artifact with the violating keys and the
// one-line command that replays the exact configuration:
//
//	ccltorture -seed 1234567 -threads 8 ...      # printed repro line
//	ccltorture -replay torture-seed1234567.json  # same thing, from the file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cclbtree/internal/torture"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccltorture", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "first workload/crash-plan seed; later runs increment it")
		duration = fs.Duration("duration", 5*time.Minute, "keep starting runs until this much wall time has passed (0 = exactly one run)")
		threads  = fs.Int("threads", 8, "concurrent workload goroutines")
		mode     = fs.String("mode", "both", "persistence domain: adr, eadr, or both (alternate)")
		gc       = fs.String("gc", "locality", "log reclamation under test: locality, naive, or off")
		torn     = fs.Bool("torn", true, "inject torn XPLines at ADR crashes")
		rounds   = fs.Int("rounds", 6, "crash-recover rounds per run")
		ops      = fs.Int("ops", 500, "operations per thread per round")
		keys     = fs.Uint64("keys", 256, "key space size (small = high contention)")
		batch    = fs.Int("batch", 0, "group writes into ApplyBatch commits of this size (0/1 = per-op writes)")
		out      = fs.String("out", "torture-artifacts", "directory for failure artifacts")
		replay   = fs.String("replay", "", "re-run the configuration recorded in a failure artifact")
		skip     = fs.Bool("unsafe-skip-wal-fence", false, "plant the skip-fence durability bug (oracle self-test)")
		skipRR   = fs.Bool("unsafe-skip-read-recheck", false, "plant the torn-optimistic-read bug (read-oracle self-test)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *replay != "" {
		a, err := torture.ReadArtifact(*replay)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "replaying %s: %s\n", *replay, a.ReproCmd)
		return oneRun(a.Config, *out, stdout, stderr)
	}

	var modes []bool // EADR per run, cycled
	switch *mode {
	case "adr":
		modes = []bool{false}
	case "eadr":
		modes = []bool{true}
	case "both":
		modes = []bool{false, true}
	default:
		fmt.Fprintf(stderr, "ccltorture: unknown -mode %q\n", *mode)
		return 2
	}

	start := time.Now()
	runs := 0
	for {
		for _, eadr := range modes {
			cfg := torture.Config{
				Seed:                  *seed + int64(runs),
				Threads:               *threads,
				Rounds:                *rounds,
				OpsPerThread:          *ops,
				KeySpace:              *keys,
				EADR:                  eadr,
				GC:                    *gc,
				Torn:                  *torn && !eadr,
				BatchSize:             *batch,
				UnsafeSkipWALFence:    *skip,
				UnsafeSkipReadRecheck: *skipRR,
			}
			if code := oneRun(cfg, *out, stdout, stderr); code != 0 {
				return code
			}
			runs++
		}
		if time.Since(start) >= *duration {
			break
		}
	}
	fmt.Fprintf(stdout, "ccltorture: %d run(s) clean in %v\n", runs, time.Since(start).Round(time.Millisecond))
	return 0
}

// oneRun executes one torture run and reports it; failures write the
// artifact and return exit code 1.
func oneRun(cfg torture.Config, outDir string, stdout, stderr io.Writer) int {
	res, err := torture.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "ccltorture: %v\n", err)
		return 2
	}
	domain := "ADR"
	if res.Config.EADR {
		domain = "eADR"
	}
	fmt.Fprintf(stdout, "seed %-8d %-4s %d rounds, %d crash(es), %d ops completed\n",
		res.Config.Seed, domain, len(res.Rounds), res.Crashes, res.OpsCompleted)
	if !res.Failed() {
		return 0
	}
	for _, v := range res.Violations {
		fmt.Fprintf(stderr, "  VIOLATION %s\n", v)
	}
	a := torture.NewArtifact(res)
	path, werr := a.Write(outDir)
	if werr != nil {
		fmt.Fprintf(stderr, "ccltorture: writing artifact: %v\n", werr)
	} else {
		fmt.Fprintf(stderr, "ccltorture: artifact %s\n", path)
	}
	fmt.Fprintf(stderr, "ccltorture: reproduce with: %s\n", a.ReproCmd)
	return 1
}
