// Command persistlint statically checks the repository's persistent
// memory discipline (see internal/analysis/persist): every PM store
// must be flushed and fenced on every path to return, flushes must be
// fenced, flushing under eADR-only branches is dead code, PM pointers
// must not be published over unfenced data, lock acquisition must
// follow the declared order, and *pmem.Thread handles must not cross
// goroutine boundaries.
//
// Usage:
//
//	persistlint [-json] [-tests] [-stats] [packages...]
//
// Package patterns are directories; a trailing /... recurses. With no
// arguments it checks ./... from the current directory. Exit status is
// 0 when no findings, 1 when findings were reported, 2 on usage or
// parse errors. -stats prints analysis self-diagnostics (functions,
// CFG nodes, summaries, per-rule counts) to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cclbtree/internal/analysis/persist"
)

// jsonFinding is the -json wire form: one object per line, keyed for
// stable diffing between runs.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Func    string `json:"func"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: parses flags, analyzes, prints, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("persistlint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit one JSON object per finding (stable across PRs for CI diffing)")
	withTest := fl.Bool("tests", false, "also analyze _test.go files")
	stats := fl.Bool("stats", false, "print analysis self-diagnostics to stderr")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: persistlint [-json] [-tests] [-stats] [packages...]\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs, err := resolve(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "persistlint: %v\n", err)
		return 2
	}

	an := persist.NewAnalyzer()
	for _, d := range dirs {
		if err := an.AddDir(d, *withTest); err != nil {
			fmt.Fprintf(stderr, "persistlint: %v\n", err)
			return 2
		}
	}
	findings := an.Run()
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			_ = enc.Encode(jsonFinding{
				File:    filepath.ToSlash(f.Pos.Filename),
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Code:    f.Code,
				Func:    f.Func,
				Message: f.Msg,
			})
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if *stats {
		printStats(stderr, an.Stats(), findings)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "persistlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// printStats emits the self-diagnostic block: CI logs should show what
// the analysis covered, not just its silence.
func printStats(w io.Writer, s persist.Stats, findings []persist.Finding) {
	fmt.Fprintf(w, "persistlint stats:\n")
	fmt.Fprintf(w, "  files analyzed      %6d\n", s.Files)
	fmt.Fprintf(w, "  functions analyzed  %6d\n", s.Functions)
	fmt.Fprintf(w, "  cfg nodes built     %6d\n", s.CFGNodes)
	fmt.Fprintf(w, "  discharge summaries %6d\n", s.DischargeSummaries)
	fmt.Fprintf(w, "  lock summaries      %6d\n", s.LockSummaries)
	byCode := map[string]int{}
	for _, f := range findings {
		byCode[f.Code]++
	}
	codes := make([]string, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "  findings %s      %6d\n", c, byCode[c])
	}
	if len(byCode) == 0 {
		fmt.Fprintf(w, "  findings                 0\n")
	}
}

// resolve expands package patterns into a deduplicated directory list.
// Directories named testdata or vendor, and hidden directories, are
// skipped during recursion (matching the go tool's conventions).
func resolve(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		if root, ok := strings.CutSuffix(p, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", p)
		}
		add(p)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
