// Command persistlint statically checks the repository's persistent
// memory discipline (see internal/analysis/persist): every PM store
// must be flushed and fenced on every path to return, flushes must be
// fenced, flushing under eADR-only branches is dead code, PM pointers
// must not be published over unfenced data, lock acquisition must
// follow the declared order, *pmem.Thread handles must not cross
// goroutine boundaries, atomic-disciplined fields must not be accessed
// plainly, guarded fields must hold their lock, seqlock readers must
// re-check, persistence work must not be provably wasted, and
// PushScope/PopScope must balance.
//
// Usage:
//
//	persistlint [-json] [-sarif FILE] [-tests] [-stats] [-disable CODES | -only CODES]
//	            [-fix [-apply]] [-budget DURATION] [-cache DIR] [packages...]
//
// Package patterns are directories; a trailing /... recurses. With no
// arguments it checks ./... from the current directory. Exit status is
// 0 when no findings, 1 when findings were reported, 2 on usage or
// parse errors — or when -budget is exceeded. -stats prints analysis
// self-diagnostics (functions, CFG nodes, call graph, summaries,
// per-rule counts) to stderr. -fix deletes the stale
// //persistlint:ignore directives PL007 flags — and nothing else;
// without -apply it only prints the planned edits. -sarif writes SARIF
// 2.1.0 to FILE ("-" replaces the default stdout listing). -cache DIR
// keeps a content-hash-keyed result cache: when no input file changed,
// the previous findings replay byte-identically without re-analysis;
// on a miss the whole program re-analyzes (summaries cross package
// boundaries, partial reuse would be unsound) and the cache reports
// what the change transitively invalidated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cclbtree/internal/analysis/persist"
)

// jsonFinding is the -json wire form: one object per line, keyed for
// stable diffing between runs.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Func    string `json:"func"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: parses flags, analyzes, prints, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("persistlint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit one JSON object per finding (stable across PRs for CI diffing)")
	sarif := fl.String("sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" emits SARIF to stdout instead of the default listing)")
	withTest := fl.Bool("tests", false, "also analyze _test.go files")
	stats := fl.Bool("stats", false, "print analysis self-diagnostics to stderr")
	disable := fl.String("disable", "", "comma-separated rule codes to switch off (e.g. PL008,PL011)")
	only := fl.String("only", "", "comma-separated rule codes to run exclusively (PL000 always runs)")
	fix := fl.Bool("fix", false, "delete stale //persistlint:ignore directives flagged by PL007 (prints planned edits; add -apply to write)")
	apply := fl.Bool("apply", false, "with -fix, write the edits to the files in place")
	budget := fl.Duration("budget", 0, "fail (exit 2) when parsing+analysis wall-clock exceeds this duration; 0 disables the gate")
	cacheDir := fl.String("cache", "", "directory for the incremental result cache (replays unchanged runs byte-identically)")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: persistlint [-json] [-sarif FILE] [-tests] [-stats] [-disable CODES | -only CODES] [-fix [-apply]] [-budget DURATION] [-cache DIR] [packages...]\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *disable != "" && *only != "" {
		fmt.Fprintf(stderr, "persistlint: -disable and -only are mutually exclusive\n")
		return 2
	}
	if *apply && !*fix {
		fmt.Fprintf(stderr, "persistlint: -apply requires -fix\n")
		return 2
	}
	if *jsonOut && *sarif == "-" {
		fmt.Fprintf(stderr, "persistlint: -json and -sarif - both claim stdout\n")
		return 2
	}
	disabled, err := resolveToggles(*disable, *only)
	if err != nil {
		fmt.Fprintf(stderr, "persistlint: %v\n", err)
		return 2
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs, err := resolve(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "persistlint: %v\n", err)
		return 2
	}

	start := time.Now()
	var findings []persist.Finding
	var st persist.Stats
	var cc *cacheContext
	cached := false
	if *cacheDir != "" {
		var cerr error
		cc, cerr = openCache(*cacheDir, dirs, disabled, *withTest)
		if cerr != nil {
			// The cache is an accelerator, never a correctness input: any
			// problem with it degrades to a cold run.
			fmt.Fprintf(stderr, "persistlint: cache disabled: %v\n", cerr)
			cc = nil
		}
		if cc != nil && cc.hit {
			findings, st = cc.prev.Findings, cc.prev.Stats
			cached = true
		}
	}
	if !cached {
		an := persist.NewAnalyzer()
		an.Disable(disabled...)
		for _, d := range dirs {
			if err := an.AddDir(d, *withTest); err != nil {
				fmt.Fprintf(stderr, "persistlint: %v\n", err)
				return 2
			}
		}
		findings = an.Run()
		st = an.Stats()
		if cc != nil {
			if changed, closure := cc.invalidated(); len(changed) > 0 {
				fmt.Fprintf(stderr, "persistlint: cache miss: changed %s; invalidates %s\n",
					strings.Join(changed, ","), strings.Join(closure, ","))
			}
			if err := cc.store(findings, st, an.DirEdges(), time.Since(start).Nanoseconds()); err != nil {
				fmt.Fprintf(stderr, "persistlint: cache write failed: %v\n", err)
			}
		}
	}
	elapsed := time.Since(start)
	if cached {
		warm := elapsed.Nanoseconds()
		if warm < 1 {
			warm = 1
		}
		fmt.Fprintf(stderr, "persistlint: cache hit, replayed %d finding(s) speedup_x=%.1f\n",
			len(findings), float64(cc.prev.ColdNS)/float64(warm))
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			_ = enc.Encode(jsonFinding{
				File:    filepath.ToSlash(f.Pos.Filename),
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Code:    f.Code,
				Func:    f.Func,
				Message: f.Msg,
			})
		}
	case *sarif == "-":
		if err := writeSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "persistlint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if *sarif != "" && *sarif != "-" {
		var buf strings.Builder
		serr := writeSARIF(&buf, findings)
		if serr == nil {
			serr = writeFileAtomic(*sarif, []byte(buf.String()))
		}
		if serr != nil {
			fmt.Fprintf(stderr, "persistlint: -sarif: %v\n", serr)
			return 2
		}
	}
	if *fix {
		if err := fixStaleDirectives(findings, *apply, stderr); err != nil {
			fmt.Fprintf(stderr, "persistlint: %v\n", err)
			return 2
		}
	}
	if *stats {
		printStats(stderr, st)
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "persistlint: analysis took %v, over the %v budget\n", elapsed.Round(time.Millisecond), *budget)
		return 2
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "persistlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// resolveToggles turns the -disable/-only flag values into the list of
// rule codes to switch off, validating every named code.
func resolveToggles(disable, only string) ([]string, error) {
	known := map[string]bool{}
	for _, c := range persist.AllCodes() {
		known[c] = true
	}
	parse := func(flagName, v string) ([]string, error) {
		var out []string
		for _, c := range strings.Split(v, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				continue
			}
			if !known[c] {
				return nil, fmt.Errorf("-%s: unknown rule code %q (known: %s)", flagName, c, strings.Join(persist.AllCodes(), ","))
			}
			out = append(out, c)
		}
		return out, nil
	}
	if disable != "" {
		return parse("disable", disable)
	}
	if only == "" {
		return nil, nil
	}
	keep, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	kept := map[string]bool{}
	for _, c := range keep {
		kept[c] = true
	}
	var off []string
	for _, c := range persist.AllCodes() {
		if !kept[c] {
			off = append(off, c)
		}
	}
	return off, nil
}

// fixStaleDirectives deletes the directive comments behind PL007
// findings: a directive alone on its line takes the whole line with
// it, a trailing directive is trimmed off its code line. Only PL007
// findings are touched — the fixer never edits code. Without apply it
// prints the planned edits and leaves the files alone. Applied edits
// go through a same-directory temp file and rename, so a crash
// mid-write can never leave a source file truncated.
func fixStaleDirectives(findings []persist.Finding, apply bool, stderr io.Writer) error {
	type edit struct{ line, col int }
	byFile := map[string][]edit{}
	for _, f := range findings {
		if f.Code == persist.CodeStaleIgnore {
			byFile[f.Pos.Filename] = append(byFile[f.Pos.Filename], edit{f.Pos.Line, f.Pos.Column})
		}
	}
	if len(byFile) == 0 {
		fmt.Fprintf(stderr, "persistlint: -fix found no stale directives\n")
		return nil
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	total := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		lines := strings.Split(string(src), "\n")
		deleted := map[int]bool{}
		for _, e := range byFile[path] {
			if e.line < 1 || e.line > len(lines) || e.col < 1 || e.col > len(lines[e.line-1])+1 {
				return fmt.Errorf("-fix: %s:%d:%d is out of range (file changed under the run?)", path, e.line, e.col)
			}
			prefix := lines[e.line-1][:e.col-1]
			if strings.TrimSpace(prefix) == "" {
				deleted[e.line] = true
				fmt.Fprintf(stderr, "persistlint: fix %s:%d: delete stale directive line\n", path, e.line)
			} else {
				lines[e.line-1] = strings.TrimRight(prefix, " \t")
				fmt.Fprintf(stderr, "persistlint: fix %s:%d: strip trailing stale directive\n", path, e.line)
			}
			total++
		}
		if apply {
			kept := lines[:0]
			for i, l := range lines {
				if !deleted[i+1] {
					kept = append(kept, l)
				}
			}
			if err := writeFileAtomic(path, []byte(strings.Join(kept, "\n"))); err != nil {
				return err
			}
		}
	}
	if apply {
		fmt.Fprintf(stderr, "persistlint: -fix deleted %d stale directive(s) in %d file(s)\n", total, len(files))
	} else {
		fmt.Fprintf(stderr, "persistlint: -fix would delete %d stale directive(s) in %d file(s); rerun with -apply to write\n", total, len(files))
	}
	return nil
}

// printStats emits the self-diagnostic block: CI logs should show what
// the analysis covered, not just its silence. Per-rule counts come
// from Stats.FindingsByCode, which Run fills from the findings it
// actually returned — the totals here reconcile with the emitted
// listing by construction, including on a cache replay.
func printStats(w io.Writer, s persist.Stats) {
	fmt.Fprintf(w, "persistlint stats:\n")
	fmt.Fprintf(w, "  files analyzed      %6d\n", s.Files)
	fmt.Fprintf(w, "  functions analyzed  %6d\n", s.Functions)
	fmt.Fprintf(w, "  cfg nodes built     %6d\n", s.CFGNodes)
	fmt.Fprintf(w, "  call graph nodes    %6d\n", s.CallNodes)
	fmt.Fprintf(w, "  call graph edges    %6d\n", s.CallEdges)
	fmt.Fprintf(w, "  call graph sccs     %6d\n", s.CallSCCs)
	fmt.Fprintf(w, "  discharge summaries %6d\n", s.DischargeSummaries)
	fmt.Fprintf(w, "  lock summaries      %6d\n", s.LockSummaries)
	fmt.Fprintf(w, "  atomic fields       %6d\n", s.AtomicFields)
	fmt.Fprintf(w, "  guarded fields      %6d\n", s.GuardedFields)
	fmt.Fprintf(w, "  field accesses      %6d\n", s.FieldAccesses)
	fmt.Fprintf(w, "  seqlock reads       %6d\n", s.SeqlockReads)
	fmt.Fprintf(w, "  scope sites         %6d\n", s.ScopeSites)
	fmt.Fprintf(w, "  entry points        %6d\n", s.EntryPoints)
	fmt.Fprintf(w, "  findings total      %6d\n", s.Findings)
	codes := make([]string, 0, len(s.FindingsByCode))
	for c := range s.FindingsByCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "  findings %s      %6d\n", c, s.FindingsByCode[c])
	}
}

// resolve expands package patterns into a deduplicated directory list.
// Directories named testdata or vendor, and hidden directories, are
// skipped during recursion (matching the go tool's conventions).
func resolve(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		if root, ok := strings.CutSuffix(p, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", p)
		}
		add(p)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
