// Command persistlint statically checks the repository's persistent
// memory discipline (see internal/analysis/persist): every PM store
// must be flushed and fenced before the function returns, flushes must
// be fenced, flushing under eADR-only branches is dead code, and
// *pmem.Thread handles must not cross goroutine boundaries.
//
// Usage:
//
//	persistlint [-json] [-tests] [packages...]
//
// Package patterns are directories; a trailing /... recurses. With no
// arguments it checks ./... from the current directory. Exit status is
// 0 when no findings, 1 when findings were reported, 2 on usage or
// parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"cclbtree/internal/analysis/persist"
)

var (
	jsonOut  = flag.Bool("json", false, "emit one JSON object per finding (stable across PRs for CI diffing)")
	withTest = flag.Bool("tests", false, "also analyze _test.go files")
)

// jsonFinding is the -json wire form: one object per line, keyed for
// stable diffing between runs.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Func    string `json:"func"`
	Message string `json:"message"`
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: persistlint [-json] [-tests] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs, err := resolve(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "persistlint: %v\n", err)
		os.Exit(2)
	}

	an := persist.NewAnalyzer()
	for _, d := range dirs {
		if err := an.AddDir(d, *withTest); err != nil {
			fmt.Fprintf(os.Stderr, "persistlint: %v\n", err)
			os.Exit(2)
		}
	}
	findings := an.Run()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			_ = enc.Encode(jsonFinding{
				File:    filepath.ToSlash(f.Pos.Filename),
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Code:    f.Code,
				Func:    f.Func,
				Message: f.Msg,
			})
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "persistlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// resolve expands package patterns into a deduplicated directory list.
// Directories named testdata or vendor, and hidden directories, are
// skipped during recursion (matching the go tool's conventions).
func resolve(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		if root, ok := strings.CutSuffix(p, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", p)
		}
		add(p)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
