package main

// cache.go is the on-disk incremental cache behind -cache DIR. One
// entry per analysis configuration (directories + toggles + -tests),
// named by the configuration's digest, holding the content hash of
// every input file, the findings, the stats, and the dir-level call/
// import edges of the run that produced it.
//
// The analysis is whole-program — a summary in one package can flip a
// finding in another — so partial reuse of stale results would be
// unsound. The cache therefore replays ONLY on a full match: same file
// set, every hash equal. Anything else reruns the analysis from
// scratch; the cached DirEdges are then used to REPORT what a changed
// file transitively invalidated (the reverse closure over call and
// import edges), which is also what a future per-package cache would
// have to rerun. Entries are written via temp file + rename, so a
// crash mid-write leaves the previous entry intact, never a torn one.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"cclbtree/internal/analysis/persist"
)

// cacheVersion invalidates every entry when the analyzer or the entry
// shape changes; bump on any change to rules, summaries, or rendering.
const cacheVersion = 1

type cacheFile struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

type cacheEntry struct {
	Version  int               `json:"version"`
	Files    []cacheFile       `json:"files"`
	DirEdges [][2]string       `json:"dirEdges"`
	Findings []persist.Finding `json:"findings"`
	Stats    persist.Stats     `json:"stats"`
	ColdNS   int64             `json:"coldNs"`
}

// cacheContext carries one run's cache state between the lookup and
// the store.
type cacheContext struct {
	path  string      // entry file
	files []cacheFile // current input hashes
	prev  *cacheEntry // previous entry, nil on first run
	hit   bool        // full match: prev.Findings may be replayed
}

// cacheKey digests the analysis configuration. Runs that could print
// different findings must never share an entry.
func cacheKey(dirs, disabled []string, withTests bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n", cacheVersion)
	sorted := append([]string(nil), disabled...)
	sort.Strings(sorted)
	for _, c := range sorted {
		fmt.Fprintf(h, "disable %s\n", c)
	}
	fmt.Fprintf(h, "tests %v\n", withTests)
	for _, d := range dirs {
		fmt.Fprintf(h, "dir %s\n", filepath.ToSlash(d))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// openCache hashes the current inputs and loads the previous entry for
// this configuration, deciding hit or miss. Never fatal: any IO or
// decode problem degrades to a cold run.
func openCache(cacheDir string, dirs, disabled []string, withTests bool) (*cacheContext, error) {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	cc := &cacheContext{
		path: filepath.Join(cacheDir, "persistlint-"+cacheKey(dirs, disabled, withTests)+".json"),
	}
	for _, d := range dirs {
		paths, err := persist.ListGoFiles(d, withTests)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			sum, err := hashFile(p)
			if err != nil {
				return nil, err
			}
			cc.files = append(cc.files, cacheFile{Path: filepath.ToSlash(p), SHA256: sum})
		}
	}
	raw, err := os.ReadFile(cc.path)
	if err != nil {
		return cc, nil // first run for this configuration
	}
	var prev cacheEntry
	if err := json.Unmarshal(raw, &prev); err != nil || prev.Version != cacheVersion {
		return cc, nil // corrupt or outdated entry: treat as cold
	}
	cc.prev = &prev
	cc.hit = sameFiles(prev.Files, cc.files)
	return cc, nil
}

func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func sameFiles(a, b []cacheFile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// invalidated reports, for a cache miss with a previous entry, the
// directories whose files changed and the full set a per-package
// engine would have to re-analyze: the changed dirs plus everything
// that transitively calls into or imports them (reverse closure over
// the recorded dir edges).
func (cc *cacheContext) invalidated() (changed, closure []string) {
	if cc.prev == nil {
		return nil, nil
	}
	prevSums := map[string]string{}
	for _, f := range cc.prev.Files {
		prevSums[f.Path] = f.SHA256
	}
	curSums := map[string]string{}
	dirty := map[string]bool{}
	for _, f := range cc.files {
		curSums[f.Path] = f.SHA256
		if prevSums[f.Path] != f.SHA256 { // changed or added
			dirty[filepath.ToSlash(filepath.Clean(filepath.Dir(f.Path)))] = true
		}
	}
	for _, f := range cc.prev.Files {
		if _, ok := curSums[f.Path]; !ok { // removed
			dirty[filepath.ToSlash(filepath.Clean(filepath.Dir(f.Path)))] = true
		}
	}

	// Reverse closure: edge (from → to) means from depends on to, so a
	// dirty `to` drags every transitive `from` in.
	rev := map[string][]string{}
	for _, e := range cc.prev.DirEdges {
		rev[e[1]] = append(rev[e[1]], e[0])
	}
	closed := map[string]bool{}
	var queue []string
	for d := range dirty {
		closed[d] = true
		queue = append(queue, d)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for _, dep := range rev[d] {
			if !closed[dep] {
				closed[dep] = true
				queue = append(queue, dep)
			}
		}
	}
	return sortedKeys(dirty), sortedKeys(closed)
}

// store writes the entry for this run crash-safely: temp file in the
// same directory, fsync-free rename into place.
func (cc *cacheContext) store(findings []persist.Finding, stats persist.Stats, dirEdges [][2]string, coldNS int64) error {
	entry := cacheEntry{
		Version:  cacheVersion,
		Files:    cc.files,
		DirEdges: dirEdges,
		Findings: findings,
		Stats:    stats,
		ColdNS:   coldNS,
	}
	raw, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(cc.path, raw)
}

// writeFileAtomic replaces path's contents via a same-directory temp
// file and rename, so readers (and crashes) see either the old bytes
// or the new, never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
