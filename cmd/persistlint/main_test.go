package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanSrc = `package p

import "cclbtree/internal/pmem"

func ok(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}
`

const leakySrc = `package p

import "cclbtree/internal/pmem"

func leakStore(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}

func leakFlush(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
}
`

// writeDir materializes a one-package directory for the CLI to scan.
func writeDir(t *testing.T, name, src string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "p")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes pins the CLI contract: 0 clean, 1 findings, 2 usage or
// parse errors.
func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer

	clean := writeDir(t, "clean.go", cleanSrc)
	if code := run([]string{clean}, &out, &errb); code != 0 {
		t.Errorf("clean dir: exit %d, want 0 (stderr: %s)", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{leaky}, &out, &errb); code != 1 {
		t.Errorf("leaky dir: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "PL001") || !strings.Contains(out.String(), "PL002") {
		t.Errorf("leaky dir output missing PL001/PL002:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("leaky dir stderr missing summary line: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "no-such-dir")}, &out, &errb); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	broken := writeDir(t, "broken.go", "package p\nfunc {")
	if code := run([]string{broken}, &out, &errb); code != 2 {
		t.Errorf("parse error: exit %d, want 2", code)
	}
}

// TestJSONShape checks the -json wire form: one object per line with
// the stable key set CI diffs against.
func TestJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{"-json", leaky}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSON lines, got %d:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		for _, k := range []string{"file", "line", "col", "code", "func", "message"} {
			if _, ok := m[k]; !ok {
				t.Errorf("JSON line missing key %q: %s", k, line)
			}
		}
	}
	// -json keeps stdout machine-clean: no summary line anywhere.
	if strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("-json should suppress the stderr summary, got: %s", errb.String())
	}
}

// TestDeterministicOutput runs the same analysis twice and demands
// byte-identical output: CI diffs depend on stable ordering.
func TestDeterministicOutput(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)
	var first string
	for i := 0; i < 3; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", leaky}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exit %d, want 1", i, code)
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatalf("run %d output differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

// TestStatsFlag checks -stats prints the self-diagnostic block to
// stderr without disturbing stdout findings.
func TestStatsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{"-stats", leaky}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	se := errb.String()
	for _, want := range []string{"persistlint stats:", "functions analyzed", "cfg nodes built", "findings PL001"} {
		if !strings.Contains(se, want) {
			t.Errorf("-stats stderr missing %q:\n%s", want, se)
		}
	}
	if strings.Contains(out.String(), "stats") {
		t.Errorf("stats leaked to stdout:\n%s", out.String())
	}
}
