package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const cleanSrc = `package p

import "cclbtree/internal/pmem"

func ok(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}
`

const leakySrc = `package p

import "cclbtree/internal/pmem"

func leakStore(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}

func leakFlush(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
}
`

// writeDir materializes a one-package directory for the CLI to scan.
func writeDir(t *testing.T, name, src string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "p")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes pins the CLI contract: 0 clean, 1 findings, 2 usage or
// parse errors.
func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer

	clean := writeDir(t, "clean.go", cleanSrc)
	if code := run([]string{clean}, &out, &errb); code != 0 {
		t.Errorf("clean dir: exit %d, want 0 (stderr: %s)", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{leaky}, &out, &errb); code != 1 {
		t.Errorf("leaky dir: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "PL001") || !strings.Contains(out.String(), "PL002") {
		t.Errorf("leaky dir output missing PL001/PL002:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("leaky dir stderr missing summary line: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "no-such-dir")}, &out, &errb); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	broken := writeDir(t, "broken.go", "package p\nfunc {")
	if code := run([]string{broken}, &out, &errb); code != 2 {
		t.Errorf("parse error: exit %d, want 2", code)
	}
}

// TestJSONShape checks the -json wire form: one object per line with
// the stable key set CI diffs against.
func TestJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{"-json", leaky}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSON lines, got %d:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		for _, k := range []string{"file", "line", "col", "code", "func", "message"} {
			if _, ok := m[k]; !ok {
				t.Errorf("JSON line missing key %q: %s", k, line)
			}
		}
	}
	// -json keeps stdout machine-clean: no summary line anywhere.
	if strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("-json should suppress the stderr summary, got: %s", errb.String())
	}
}

// TestDeterministicOutput runs the same analysis twice and demands
// byte-identical output: CI diffs depend on stable ordering.
func TestDeterministicOutput(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)
	var first string
	for i := 0; i < 3; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", leaky}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exit %d, want 1", i, code)
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatalf("run %d output differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

// corpusDir is the analyzer's own golden corpus: the one directory
// guaranteed to exercise every rule, PL008–PL012 included.
const corpusDir = "../../internal/analysis/persist/testdata"

// TestRuleToggleFlags pins -disable/-only: they remove exactly the
// named rules, reject unknown codes, and refuse to be combined.
func TestRuleToggleFlags(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)

	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "PL001", leaky}, &out, &errb); code != 1 {
		t.Fatalf("-disable PL001: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if strings.Contains(out.String(), "PL001") || !strings.Contains(out.String(), "PL002") {
		t.Errorf("-disable PL001 output wrong:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "PL001", leaky}, &out, &errb); code != 1 {
		t.Fatalf("-only PL001: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "PL001") || strings.Contains(out.String(), "PL002") {
		t.Errorf("-only PL001 output wrong:\n%s", out.String())
	}

	for _, args := range [][]string{
		{"-disable", "PL999", leaky},
		{"-only", "bogus", leaky},
		{"-disable", "PL001", "-only", "PL002", leaky},
		{"-apply", leaky},
	} {
		out.Reset()
		errb.Reset()
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

// TestBudgetFlag: an impossible budget fails the run with exit 2, a
// generous one changes nothing.
func TestBudgetFlag(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-budget", "1ns", leaky}, &out, &errb); code != 2 {
		t.Errorf("-budget 1ns: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "over the") {
		t.Errorf("-budget 1ns stderr missing breach message: %s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-budget", "1m", leaky}, &out, &errb); code != 1 {
		t.Errorf("-budget 1m: exit %d, want 1", code)
	}
}

// staleSrc carries two stale directives (one on its own line, one
// trailing a code line) and one live finding the fixer must not touch.
const staleSrc = `package p

import "cclbtree/internal/pmem"

func lineDirective(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001 the caller used to persist this
	t.Store(a, 1)
	t.Persist(a, 8)
}

func trailingDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8) //persistlint:ignore PL002 the epilogue once fenced this
}

func leakStays(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}
`

// fixedSrc is staleSrc after -fix -apply: directive lines deleted,
// trailing directives stripped, code untouched.
const fixedSrc = `package p

import "cclbtree/internal/pmem"

func lineDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}

func trailingDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}

func leakStays(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}
`

// TestFixStaleDirectives is the golden before/after for -fix: dry run
// by default, byte-exact edits under -apply, and nothing but PL007
// directives removed.
func TestFixStaleDirectives(t *testing.T) {
	dir := writeDir(t, "stale.go", staleSrc)
	path := filepath.Join(dir, "stale.go")

	var out, errb bytes.Buffer
	if code := run([]string{"-fix", dir}, &out, &errb); code != 1 {
		t.Fatalf("-fix dry run: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "would delete 2 stale directive(s)") {
		t.Errorf("dry run stderr missing plan: %s", errb.String())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != staleSrc {
		t.Fatalf("dry run modified the file:\n%s", after)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-fix", "-apply", dir}, &out, &errb); code != 1 {
		t.Fatalf("-fix -apply: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "deleted 2 stale directive(s)") {
		t.Errorf("apply stderr missing summary: %s", errb.String())
	}
	after, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != fixedSrc {
		t.Fatalf("-fix -apply result differs from golden:\n--- got ---\n%s--- want ---\n%s", after, fixedSrc)
	}

	// The live finding survived; the stale directives are gone for good.
	out.Reset()
	errb.Reset()
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("post-fix run: exit %d, want 1", code)
	}
	if strings.Contains(out.String(), "PL007") || !strings.Contains(out.String(), "PL001") {
		t.Errorf("post-fix findings wrong:\n%s", out.String())
	}
}

// TestCorpusDeterminism runs the analyzer's full golden corpus — every
// rule firing at once — through -json twice and demands byte-identical
// output, and that each concurrency rule contributes at least one line.
func TestCorpusDeterminism(t *testing.T) {
	var first string
	for i := 0; i < 2; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", corpusDir}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exit %d, want 1 (stderr: %s)", i, code, errb.String())
		}
		if i == 0 {
			first = out.String()
			for _, c := range []string{"PL008", "PL009", "PL010", "PL011", "PL012"} {
				if !strings.Contains(first, c) {
					t.Errorf("corpus JSON missing %s findings", c)
				}
			}
		} else if out.String() != first {
			t.Fatalf("run %d -json output differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

// TestStatsFlag checks -stats prints the self-diagnostic block to
// stderr without disturbing stdout findings.
func TestStatsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{"-stats", leaky}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	se := errb.String()
	for _, want := range []string{"persistlint stats:", "functions analyzed", "cfg nodes built", "findings PL001"} {
		if !strings.Contains(se, want) {
			t.Errorf("-stats stderr missing %q:\n%s", want, se)
		}
	}
	if strings.Contains(out.String(), "stats") {
		t.Errorf("stats leaked to stdout:\n%s", out.String())
	}

	// Over the golden corpus the concurrency counters are all live.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-stats", corpusDir}, &out, &errb); code != 1 {
		t.Fatalf("corpus -stats: exit %d, want 1", code)
	}
	se = errb.String()
	for _, want := range []string{"atomic fields", "guarded fields", "field accesses", "seqlock reads", "scope sites"} {
		if !strings.Contains(se, want) {
			t.Errorf("corpus -stats stderr missing %q:\n%s", want, se)
		}
		re := regexp.MustCompile(want + `\s+0\n`)
		if re.MatchString(se) {
			t.Errorf("corpus -stats counter %q is zero:\n%s", want, se)
		}
	}
}
