package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

const cleanSrc = `package p

import "cclbtree/internal/pmem"

func ok(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}
`

const leakySrc = `package p

import "cclbtree/internal/pmem"

func leakStore(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}

func leakFlush(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Flush(a, 8)
}
`

// writeDir materializes a one-package directory for the CLI to scan.
func writeDir(t *testing.T, name, src string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "p")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes pins the CLI contract: 0 clean, 1 findings, 2 usage or
// parse errors.
func TestExitCodes(t *testing.T) {
	var out, errb bytes.Buffer

	clean := writeDir(t, "clean.go", cleanSrc)
	if code := run([]string{clean}, &out, &errb); code != 0 {
		t.Errorf("clean dir: exit %d, want 0 (stderr: %s)", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{leaky}, &out, &errb); code != 1 {
		t.Errorf("leaky dir: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "PL001") || !strings.Contains(out.String(), "PL002") {
		t.Errorf("leaky dir output missing PL001/PL002:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("leaky dir stderr missing summary line: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "no-such-dir")}, &out, &errb); code != 2 {
		t.Errorf("missing dir: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	broken := writeDir(t, "broken.go", "package p\nfunc {")
	if code := run([]string{broken}, &out, &errb); code != 2 {
		t.Errorf("parse error: exit %d, want 2", code)
	}
}

// TestJSONShape checks the -json wire form: one object per line with
// the stable key set CI diffs against.
func TestJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{"-json", leaky}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSON lines, got %d:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		for _, k := range []string{"file", "line", "col", "code", "func", "message"} {
			if _, ok := m[k]; !ok {
				t.Errorf("JSON line missing key %q: %s", k, line)
			}
		}
	}
	// -json keeps stdout machine-clean: no summary line anywhere.
	if strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("-json should suppress the stderr summary, got: %s", errb.String())
	}
}

// TestDeterministicOutput runs the same analysis twice and demands
// byte-identical output: CI diffs depend on stable ordering.
func TestDeterministicOutput(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)
	var first string
	for i := 0; i < 3; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", leaky}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exit %d, want 1", i, code)
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatalf("run %d output differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

// corpusDir is the analyzer's own golden corpus: the one directory
// guaranteed to exercise every rule, PL008–PL012 included.
const corpusDir = "../../internal/analysis/persist/testdata"

// TestRuleToggleFlags pins -disable/-only: they remove exactly the
// named rules, reject unknown codes, and refuse to be combined.
func TestRuleToggleFlags(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)

	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "PL001", leaky}, &out, &errb); code != 1 {
		t.Fatalf("-disable PL001: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if strings.Contains(out.String(), "PL001") || !strings.Contains(out.String(), "PL002") {
		t.Errorf("-disable PL001 output wrong:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "PL001", leaky}, &out, &errb); code != 1 {
		t.Fatalf("-only PL001: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "PL001") || strings.Contains(out.String(), "PL002") {
		t.Errorf("-only PL001 output wrong:\n%s", out.String())
	}

	for _, args := range [][]string{
		{"-disable", "PL999", leaky},
		{"-only", "bogus", leaky},
		{"-disable", "PL001", "-only", "PL002", leaky},
		{"-apply", leaky},
	} {
		out.Reset()
		errb.Reset()
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

// TestBudgetFlag: an impossible budget fails the run with exit 2, a
// generous one changes nothing.
func TestBudgetFlag(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-budget", "1ns", leaky}, &out, &errb); code != 2 {
		t.Errorf("-budget 1ns: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "over the") {
		t.Errorf("-budget 1ns stderr missing breach message: %s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-budget", "1m", leaky}, &out, &errb); code != 1 {
		t.Errorf("-budget 1m: exit %d, want 1", code)
	}
}

// staleSrc carries two stale directives (one on its own line, one
// trailing a code line) and one live finding the fixer must not touch.
const staleSrc = `package p

import "cclbtree/internal/pmem"

func lineDirective(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001 the caller used to persist this
	t.Store(a, 1)
	t.Persist(a, 8)
}

func trailingDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8) //persistlint:ignore PL002 the epilogue once fenced this
}

func leakStays(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}
`

// fixedSrc is staleSrc after -fix -apply: directive lines deleted,
// trailing directives stripped, code untouched.
const fixedSrc = `package p

import "cclbtree/internal/pmem"

func lineDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}

func trailingDirective(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}

func leakStays(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
}
`

// TestFixStaleDirectives is the golden before/after for -fix: dry run
// by default, byte-exact edits under -apply, and nothing but PL007
// directives removed.
func TestFixStaleDirectives(t *testing.T) {
	dir := writeDir(t, "stale.go", staleSrc)
	path := filepath.Join(dir, "stale.go")

	var out, errb bytes.Buffer
	if code := run([]string{"-fix", dir}, &out, &errb); code != 1 {
		t.Fatalf("-fix dry run: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "would delete 2 stale directive(s)") {
		t.Errorf("dry run stderr missing plan: %s", errb.String())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != staleSrc {
		t.Fatalf("dry run modified the file:\n%s", after)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-fix", "-apply", dir}, &out, &errb); code != 1 {
		t.Fatalf("-fix -apply: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "deleted 2 stale directive(s)") {
		t.Errorf("apply stderr missing summary: %s", errb.String())
	}
	after, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != fixedSrc {
		t.Fatalf("-fix -apply result differs from golden:\n--- got ---\n%s--- want ---\n%s", after, fixedSrc)
	}

	// The live finding survived; the stale directives are gone for good.
	out.Reset()
	errb.Reset()
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("post-fix run: exit %d, want 1", code)
	}
	if strings.Contains(out.String(), "PL007") || !strings.Contains(out.String(), "PL001") {
		t.Errorf("post-fix findings wrong:\n%s", out.String())
	}
}

// TestCorpusDeterminism runs the analyzer's full golden corpus — every
// rule firing at once — through -json twice and demands byte-identical
// output, and that each concurrency rule contributes at least one line.
func TestCorpusDeterminism(t *testing.T) {
	var first string
	for i := 0; i < 2; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", corpusDir}, &out, &errb); code != 1 {
			t.Fatalf("run %d: exit %d, want 1 (stderr: %s)", i, code, errb.String())
		}
		if i == 0 {
			first = out.String()
			for _, c := range []string{"PL008", "PL009", "PL010", "PL011", "PL012"} {
				if !strings.Contains(first, c) {
					t.Errorf("corpus JSON missing %s findings", c)
				}
			}
		} else if out.String() != first {
			t.Fatalf("run %d -json output differs:\n%s\nvs\n%s", i, out.String(), first)
		}
	}
}

// TestCacheColdWarmByteIdentical pins the incremental cache's core
// contract: a warm replay prints byte-for-byte what the cold run
// printed, and says how much faster it was.
func TestCacheColdWarmByteIdentical(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)
	cacheDir := filepath.Join(t.TempDir(), "plcache")

	var cold, coldErr bytes.Buffer
	if code := run([]string{"-json", "-cache", cacheDir, leaky}, &cold, &coldErr); code != 1 {
		t.Fatalf("cold run: exit %d, want 1 (stderr: %s)", code, coldErr.String())
	}
	if strings.Contains(coldErr.String(), "cache hit") {
		t.Fatalf("cold run claimed a cache hit: %s", coldErr.String())
	}

	var warm, warmErr bytes.Buffer
	if code := run([]string{"-json", "-cache", cacheDir, leaky}, &warm, &warmErr); code != 1 {
		t.Fatalf("warm run: exit %d, want 1 (stderr: %s)", code, warmErr.String())
	}
	if warm.String() != cold.String() {
		t.Errorf("warm replay differs from cold run:\n--- cold ---\n%s--- warm ---\n%s", cold.String(), warm.String())
	}
	if !strings.Contains(warmErr.String(), "cache hit") || !strings.Contains(warmErr.String(), "speedup_x=") {
		t.Errorf("warm stderr missing hit/speedup report: %s", warmErr.String())
	}

	// A configuration change must not share the entry: different toggles
	// can print different findings.
	var toggled, toggledErr bytes.Buffer
	if code := run([]string{"-json", "-cache", cacheDir, "-disable", "PL002", leaky}, &toggled, &toggledErr); code != 1 {
		t.Fatalf("toggled run: exit %d, want 1 (stderr: %s)", code, toggledErr.String())
	}
	if strings.Contains(toggledErr.String(), "cache hit") {
		t.Errorf("-disable run replayed the undisabled entry: %s", toggledErr.String())
	}
	if strings.Contains(toggled.String(), "PL002") {
		t.Errorf("-disable PL002 output still has PL002:\n%s", toggled.String())
	}
}

// libSrc/appSrc form a two-package tree where app's helper discharges
// through lib: editing lib must invalidate app transitively.
const libSrc = `package lib

import "cclbtree/internal/pmem"

func PersistWord(t *pmem.Thread, a pmem.Addr) {
	t.Store(a, 1)
	t.Persist(a, 8)
}
`

const appSrc = `package app

import (
	"cclbtree/internal/pmem"
	"example.com/mod/lib"
)

func Write(t *pmem.Thread, a pmem.Addr) {
	lib.PersistWord(t, a)
}
`

// TestCacheInvalidationClosure edits one package between runs and
// checks the miss report names both the changed directory and its
// reverse closure over the recorded dir edges.
func TestCacheInvalidationClosure(t *testing.T) {
	base := t.TempDir()
	libDir := filepath.Join(base, "lib")
	appDir := filepath.Join(base, "app")
	for dir, src := range map[string]string{libDir: libSrc, appDir: appSrc} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cacheDir := filepath.Join(base, "plcache")
	args := []string{"-json", "-cache", cacheDir, libDir, appDir}

	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("cold run: exit %d, want 0 (stderr: %s)", code, errb.String())
	}

	if err := os.WriteFile(filepath.Join(libDir, "p.go"), []byte(libSrc+"\n// touched\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("post-edit run: exit %d, want 0 (stderr: %s)", code, errb.String())
	}
	se := errb.String()
	if !strings.Contains(se, "cache miss: changed ") {
		t.Fatalf("post-edit stderr missing miss report: %s", se)
	}
	_, invalidates, ok := strings.Cut(se, "invalidates ")
	if !ok {
		t.Fatalf("miss report missing invalidation closure: %s", se)
	}
	changedPart := se[:strings.Index(se, "; invalidates")]
	if strings.Contains(changedPart, filepath.ToSlash(appDir)) {
		t.Errorf("untouched app dir reported as changed: %s", se)
	}
	for _, dir := range []string{libDir, appDir} {
		if !strings.Contains(invalidates, filepath.ToSlash(dir)) {
			t.Errorf("invalidation closure missing %s: %s", dir, se)
		}
	}
}

// TestSARIFOutput checks -sarif renders a valid 2.1.0 log with the
// full rule catalog and one result per finding, to stdout or a file.
func TestSARIFOutput(t *testing.T) {
	leaky := writeDir(t, "leaky.go", leakySrc)

	var out, errb bytes.Buffer
	if code := run([]string{"-sarif", "-", leaky}, &out, &errb); code != 1 {
		t.Fatalf("-sarif -: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad SARIF: %v\n%s", err, out.String())
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("wrong SARIF shell: version %q, %d runs", doc.Version, len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "persistlint" {
		t.Errorf("driver name %q", run0.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"PL001", "PL013", "PL014", "PL015"} {
		if !ruleIDs[want] {
			t.Errorf("rule catalog missing %s", want)
		}
	}
	if len(run0.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run0.Results))
	}
	for _, r := range run0.Results {
		if r.RuleID != "PL001" && r.RuleID != "PL002" {
			t.Errorf("unexpected ruleId %s", r.RuleID)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result missing location: %+v", r)
		}
	}

	// File mode writes the same document to disk and keeps the listing
	// on stdout.
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	out.Reset()
	errb.Reset()
	if code := run([]string{"-sarif", sarifPath, leaky}, &out, &errb); code != 1 {
		t.Fatalf("-sarif FILE: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	raw, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"2.1.0"`)) {
		t.Errorf("SARIF file missing version: %s", raw)
	}
	if !strings.Contains(out.String(), "PL001") {
		t.Errorf("-sarif FILE should keep the stdout listing:\n%s", out.String())
	}

	// -json owns stdout; combining it with -sarif - is a usage error.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-json", "-sarif", "-", leaky}, &out, &errb); code != 2 {
		t.Errorf("-json with -sarif -: exit %d, want 2", code)
	}
}

// statsCounts parses the -stats block: the total line and every
// per-code line.
func statsCounts(t *testing.T, stderr string) (total int, byCode map[string]int) {
	t.Helper()
	byCode = map[string]int{}
	total = -1
	totalRe := regexp.MustCompile(`findings total\s+(\d+)`)
	codeRe := regexp.MustCompile(`findings (PL\d+)\s+(\d+)`)
	if m := totalRe.FindStringSubmatch(stderr); m != nil {
		total = atoi(t, m[1])
	}
	for _, m := range codeRe.FindAllStringSubmatch(stderr, -1) {
		byCode[m[1]] = atoi(t, m[2])
	}
	return total, byCode
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestStatsReconcile pins the counter contract: over the full corpus,
// the per-code stats sum to the total and both equal the number of
// findings actually emitted — cold and under cache replay.
func TestStatsReconcile(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "plcache")
	for _, pass := range []string{"cold", "warm"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-stats", "-json", "-cache", cacheDir, corpusDir}, &out, &errb); code != 1 {
			t.Fatalf("%s: exit %d, want 1 (stderr: %s)", pass, code, errb.String())
		}
		emitted := len(strings.Split(strings.TrimSpace(out.String()), "\n"))
		total, byCode := statsCounts(t, errb.String())
		sum := 0
		for _, n := range byCode {
			sum += n
		}
		if total != emitted || sum != emitted {
			t.Errorf("%s: stats drift: total %d, per-code sum %d, emitted %d", pass, total, sum, emitted)
		}
		if pass == "warm" && !strings.Contains(errb.String(), "cache hit") {
			t.Errorf("warm pass was not a replay: %s", errb.String())
		}
	}
}

// disabledDirectiveSrc suppresses a finding of a rule the run then
// disables: with the rule off the directive is unprovable, not stale,
// and PL007 must stay quiet.
const disabledDirectiveSrc = `package p

import "cclbtree/internal/pmem"

func excusedLeak(t *pmem.Thread, a pmem.Addr) {
	//persistlint:ignore PL001 recovery rewrites this word before first read
	t.Store(a, 1)
}
`

// TestStaleDirectiveSkipsDisabledRules is the PL007 regression for
// -disable/-only: a directive naming a rule the run cannot evaluate is
// never reported stale.
func TestStaleDirectiveSkipsDisabledRules(t *testing.T) {
	dir := writeDir(t, "excused.go", disabledDirectiveSrc)

	var out, errb bytes.Buffer
	if code := run([]string{"-disable", "PL001", dir}, &out, &errb); code != 0 {
		t.Fatalf("-disable PL001: exit %d, want 0 (stdout: %s)", code, out.String())
	}
	if strings.Contains(out.String(), "PL007") {
		t.Errorf("-disable PL001 flagged the directive stale:\n%s", out.String())
	}

	// -only PL002 disables PL001 the other way around; same contract.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-only", "PL002", dir}, &out, &errb); code != 0 {
		t.Fatalf("-only PL002: exit %d, want 0 (stdout: %s)", code, out.String())
	}
	if strings.Contains(out.String(), "PL007") {
		t.Errorf("-only PL002 flagged the directive stale:\n%s", out.String())
	}

	// With PL001 live the directive provably suppresses a real finding:
	// still not stale, and the leak stays hidden.
	out.Reset()
	errb.Reset()
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("default run: exit %d, want 0 (stdout: %s)", code, out.String())
	}
}

// TestStatsFlag checks -stats prints the self-diagnostic block to
// stderr without disturbing stdout findings.
func TestStatsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	leaky := writeDir(t, "leaky.go", leakySrc)
	if code := run([]string{"-stats", leaky}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	se := errb.String()
	for _, want := range []string{"persistlint stats:", "functions analyzed", "cfg nodes built", "findings PL001"} {
		if !strings.Contains(se, want) {
			t.Errorf("-stats stderr missing %q:\n%s", want, se)
		}
	}
	if strings.Contains(out.String(), "stats") {
		t.Errorf("stats leaked to stdout:\n%s", out.String())
	}

	// Over the golden corpus the concurrency counters are all live.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-stats", corpusDir}, &out, &errb); code != 1 {
		t.Fatalf("corpus -stats: exit %d, want 1", code)
	}
	se = errb.String()
	for _, want := range []string{"atomic fields", "guarded fields", "field accesses", "seqlock reads", "scope sites"} {
		if !strings.Contains(se, want) {
			t.Errorf("corpus -stats stderr missing %q:\n%s", want, se)
		}
		re := regexp.MustCompile(want + `\s+0\n`)
		if re.MatchString(se) {
			t.Errorf("corpus -stats counter %q is zero:\n%s", want, se)
		}
	}
}
