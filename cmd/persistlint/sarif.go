package main

// sarif.go renders findings as SARIF 2.1.0, the static-analysis
// interchange format CI systems (GitHub code scanning among them)
// ingest natively. The document is built from structs and marshaled
// with sorted rule metadata so a given finding set renders to
// byte-identical SARIF — the cache determinism gate diffs these files.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"

	"cclbtree/internal/analysis/persist"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits one run with the full rule catalog (so suppressed
// and clean runs still document what was checked) and one result per
// finding, in the findings' already-deterministic order.
func writeSARIF(w io.Writer, findings []persist.Finding) error {
	titles := persist.RuleTitles()
	codes := make([]string, 0, len(titles))
	for c := range titles {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	rules := make([]sarifRule, 0, len(codes))
	for _, c := range codes {
		rules = append(rules, sarifRule{ID: c, ShortDescription: sarifMessage{Text: titles[c]}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Code,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg + " (in " + f.Func + ")"},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	doc := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "persistlint", InformationURI: "internal/analysis/persist", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
