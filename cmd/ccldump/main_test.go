package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cclbtree"
	"cclbtree/internal/pmem"
)

// TestDumpSavedImage is the end-to-end smoke test: build a small tree,
// save its persistent image the way examples/kvstore does, and check
// the dump reports a consistent chain. The pool shape must match the
// CLI defaults (-sockets 2 -device-mb 32) for the load to line up.
func TestDumpSavedImage(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 2, DeviceBytes: 32 << 20})
	db, err := cclbtree.NewOnPool(pool, cclbtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session(0)
	for k := uint64(1); k <= 500; k++ {
		if err := s.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	path := filepath.Join(t.TempDir(), "tree.pm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for sck := 0; sck < pool.Sockets(); sck++ {
		if err := pool.SavePersistent(sck, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"image " + path, "tree mode", "leaf-chain order : OK"} {
		if !strings.Contains(got, want) {
			t.Errorf("dump output missing %q:\n%s", want, got)
		}
	}
}

// TestUsageErrors pins the CLI error contract: 2 on usage problems,
// 1 on a missing image.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("no-args stderr missing usage: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.pm")}, &out, &errb); code != 1 {
		t.Errorf("missing image: exit %d, want 1", code)
	}
}
