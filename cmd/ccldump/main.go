// Command ccldump inspects the persistent image of a CCL-BTree pool
// saved with Pool.SavePersistent (e.g. by examples/kvstore): the
// superblock, leaf-chain statistics, an inter-leaf order check, and the
// registered write-ahead-log chunks. It never mutates the image.
//
//	go run ./examples/kvstore            # produces kvstore.pm
//	go run ./cmd/ccldump kvstore.pm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cclbtree/internal/core"
	"cclbtree/internal/pmem"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: loads the image, inspects, prints the
// report, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ccldump", flag.ContinueOnError)
	fl.SetOutput(stderr)
	sockets := fl.Int("sockets", 2, "sockets the image was saved with")
	deviceMB := fl.Int("device-mb", 32, "device size per socket in MiB")
	fl.Usage = func() {
		fmt.Fprintln(stderr, "usage: ccldump [-sockets N] [-device-mb M] <image-file>")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() != 1 {
		fl.Usage()
		return 2
	}
	path := fl.Arg(0)

	pool := pmem.NewPool(pmem.Config{
		Sockets:     *sockets,
		DeviceBytes: int64(*deviceMB) << 20,
	})
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	for s := 0; s < pool.Sockets(); s++ {
		if err := pool.LoadPersistent(s, f); err != nil {
			fmt.Fprintf(stderr, "load socket %d: %v\n", s, err)
			return 1
		}
	}
	rep, err := core.Inspect(pool)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "image %s\n", path)
	rep.Fprint(stdout)
	return 0
}
