// Command ccldump inspects the persistent image of a CCL-BTree pool
// saved with Pool.SavePersistent (e.g. by examples/kvstore): the
// superblock, leaf-chain statistics, an inter-leaf order check, and the
// registered write-ahead-log chunks. It never mutates the image.
//
//	go run ./examples/kvstore            # produces kvstore.pm
//	go run ./cmd/ccldump kvstore.pm
package main

import (
	"flag"
	"fmt"
	"os"

	"cclbtree/internal/core"
	"cclbtree/internal/pmem"
)

func main() {
	sockets := flag.Int("sockets", 2, "sockets the image was saved with")
	deviceMB := flag.Int("device-mb", 32, "device size per socket in MiB")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccldump [-sockets N] [-device-mb M] <image-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	pool := pmem.NewPool(pmem.Config{
		Sockets:     *sockets,
		DeviceBytes: int64(*deviceMB) << 20,
	})
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	for s := 0; s < pool.Sockets(); s++ {
		if err := pool.LoadPersistent(s, f); err != nil {
			fmt.Fprintf(os.Stderr, "load socket %d: %v\n", s, err)
			os.Exit(1)
		}
	}
	rep, err := core.Inspect(pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("image %s\n", path)
	rep.Fprint(os.Stdout)
}
