package main

import (
	"strings"
	"testing"

	"cclbtree/internal/bench"
)

// A panicking experiment must surface as an error (so main can emit
// the partial report and exit non-zero), not kill the process.
func TestRunExperimentRecoversPanic(t *testing.T) {
	e := bench.Experiment{
		Name: "boom",
		Run: func(bench.Scale) ([]*bench.Table, error) {
			panic("device exploded")
		},
	}
	tabs, err := runExperiment(e, bench.Scale{})
	if tabs != nil || err == nil {
		t.Fatalf("want nil tables + error, got %v, %v", tabs, err)
	}
	if !strings.Contains(err.Error(), "device exploded") {
		t.Fatalf("panic value lost: %v", err)
	}
}

func TestRunExperimentPassesThrough(t *testing.T) {
	want := []*bench.Table{{Title: "ok"}}
	e := bench.Experiment{
		Name: "fine",
		Run:  func(bench.Scale) ([]*bench.Table, error) { return want, nil },
	}
	tabs, err := runExperiment(e, bench.Scale{})
	if err != nil || len(tabs) != 1 || tabs[0].Title != "ok" {
		t.Fatalf("got %v, %v", tabs, err)
	}
}
