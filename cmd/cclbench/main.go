// Command cclbench regenerates the tables and figures of the CCL-BTree
// paper's evaluation (EuroSys '24, §5) on the software PM model.
//
// Usage:
//
//	cclbench -list                 # show available experiments
//	cclbench -exp fig3             # run one experiment
//	cclbench -exp all              # run everything
//	cclbench -exp fig10 -warm 500000 -ops 500000 -threads 1,24,48,96
//
//	cclbench -compare base.json -against cur.json   # perf-regression gate
//	cclbench -exp ycsbb -compare base.json          # run, then gate the result
//
// Sizes default to ≈1/500 of the paper's (which used 50 M warm keys and
// 50 M operations on real Optane hardware); throughput numbers are
// simulated-time and meant for shape comparison, not absolute match.
//
// The regression gate exits 3 (distinct from the usual failure exit 1)
// when any baseline phase regressed beyond the tolerance, so CI can
// tell "experiment crashed" from "experiment got slower".
//
// On SIGINT/SIGTERM the in-progress report is written as a partial
// BENCH_<exp>.json and the -trace ring (if any) is flushed before
// exiting 130, so an interrupted run still leaves its evidence behind.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cclbtree/internal/bench"
	"cclbtree/internal/obs"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		exp       = flag.String("exp", "", "experiment to run (or 'all')")
		warm      = flag.Int("warm", 0, "warm keys (0 = default)")
		ops       = flag.Int("ops", 0, "measured operations (0 = default)")
		threads   = flag.String("threads", "", "comma-separated thread sweep")
		mainThr   = flag.Int("mainthreads", 0, "thread count for single-point experiments")
		scanLen   = flag.Int("scanlen", 0, "default range query length")
		seed      = flag.Int64("seed", 0, "workload seed")
		out       = flag.String("out", ".", "directory for BENCH_<exp>.json records (\"\" disables)")
		httpOn    = flag.String("http", "", "serve live observation JSON on this address (e.g. :7071)")
		compare   = flag.String("compare", "", "baseline BENCH json for the perf-regression gate")
		against   = flag.String("against", "", "compare -compare baseline against this BENCH json and exit (no experiments run)")
		tolerance = flag.Float64("tolerance", bench.DefaultTolerance, "relative regression tolerance for -compare")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event dump of profiled runs to this file")
	)
	flag.Parse()

	// Standalone gate: compare two existing reports, run nothing.
	if *against != "" {
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "-against requires -compare <baseline.json>")
			os.Exit(2)
		}
		os.Exit(runGate(*compare, *against, *tolerance))
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <name> or -exp all")
		}
		return
	}

	var baseline *obs.BenchReport
	if *compare != "" {
		var err error
		baseline, err = obs.ReadBenchReport(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
			os.Exit(2)
		}
	}

	scale := bench.Scale{Warm: *warm, Ops: *ops, MainThreads: *mainThr, ScanLen: *scanLen, Seed: *seed}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			scale.Threads = append(scale.Threads, n)
		}
	}

	var tracer *obs.Tracer
	flushTrace := func() {}
	if *traceOut != "" {
		tracer = obs.NewTracer(1 << 16)
		tracer.Enable()
		scale.Tracer = tracer
		flushTrace = func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				return
			}
			defer f.Close()
			if err := tracer.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				return
			}
			fmt.Printf("[wrote trace %s]\n", *traceOut)
		}
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *httpOn != "" {
		// Live observation endpoint: the currently measured pool's
		// counters as JSON (503 between runs). cclstat -attach polls it.
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/", obs.Handler())
			if err := http.ListenAndServe(*httpOn, mux); err != nil {
				fmt.Fprintf(os.Stderr, "http listener: %v\n", err)
			}
		}()
		fmt.Printf("serving live observation on %s\n", *httpOn)
	}

	// Interrupted runs still persist their evidence: the phases recorded
	// so far as a partial report, plus whatever the trace ring holds.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "\ninterrupted (%v), writing partial results\n", s)
		if rep := bench.SnapshotReport(); rep != nil && *out != "" {
			rep.Partial = true
			rep.Err = fmt.Sprintf("interrupted: %v", s)
			if path, err := rep.WriteFile(*out); err != nil {
				fmt.Fprintf(os.Stderr, "partial report: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "[wrote partial %s: %d phases]\n", path, len(rep.Phases))
			}
		}
		flushTrace()
		os.Exit(130)
	}()

	var violations []string
	for _, e := range selected {
		start := time.Now()
		bench.StartReport(e.Name)
		tabs, err := runExperiment(e, scale)
		rep := bench.FinishReport()
		if err != nil {
			rep.Partial = true
			rep.Err = err.Error()
		}
		if *out != "" {
			if path, werr := rep.WriteFile(*out); werr != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, werr)
			} else {
				fmt.Printf("[wrote %s: %d phases]\n", path, len(rep.Phases))
			}
		}
		if err != nil {
			// An experiment died: print whatever phases completed so the
			// run is not a total loss, then fail the process.
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			if len(rep.Phases) > 0 {
				fmt.Fprintf(os.Stderr, "partial results (%d phases):\n", len(rep.Phases))
				for _, p := range rep.Phases {
					fmt.Fprintf(os.Stderr, "  %-28s %8.2f Mop/s  WA %.2f\n",
						p.Phase, p.MopsPerSec, p.WAFactor)
				}
			}
			os.Exit(1)
		}
		for _, t := range tabs {
			t.Fprint(os.Stdout)
		}
		if baseline != nil && baseline.Name == rep.Name {
			violations = append(violations, bench.CompareReports(baseline, rep, *tolerance)...)
		}
		fmt.Printf("[%s finished in %.1fs wall]\n\n", e.Name, time.Since(start).Seconds())
	}
	flushTrace()
	if baseline != nil {
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", v)
			}
			os.Exit(3)
		}
		fmt.Printf("[perf gate passed against %s]\n", *compare)
	}
}

// runGate compares two saved reports and returns the process exit code:
// 0 clean, 3 regressed, 2 unusable input.
func runGate(basePath, curPath string, tol float64) int {
	base, err := obs.ReadBenchReport(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
		return 2
	}
	cur, err := obs.ReadBenchReport(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "current: %v\n", err)
		return 2
	}
	if cur.Partial {
		fmt.Fprintf(os.Stderr, "current report %s is partial (%s); refusing to gate on it\n", curPath, cur.Err)
		return 2
	}
	violations := bench.CompareReports(base, cur, tol)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", v)
		}
		return 3
	}
	fmt.Printf("perf gate passed: %d phases within tolerance %.0f%%\n", len(base.Phases), tol*100)
	return 0
}

// runExperiment runs one experiment, converting a panic into an error
// so the caller can still emit the phases recorded before the crash.
func runExperiment(e bench.Experiment, scale bench.Scale) (tabs []*bench.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return e.Run(scale)
}
