// Command cclbench regenerates the tables and figures of the CCL-BTree
// paper's evaluation (EuroSys '24, §5) on the software PM model.
//
// Usage:
//
//	cclbench -list                 # show available experiments
//	cclbench -exp fig3             # run one experiment
//	cclbench -exp all              # run everything
//	cclbench -exp fig10 -warm 500000 -ops 500000 -threads 1,24,48,96
//
// Sizes default to ≈1/500 of the paper's (which used 50 M warm keys and
// 50 M operations on real Optane hardware); throughput numbers are
// simulated-time and meant for shape comparison, not absolute match.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"cclbtree/internal/bench"
	"cclbtree/internal/obs"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment to run (or 'all')")
		warm    = flag.Int("warm", 0, "warm keys (0 = default)")
		ops     = flag.Int("ops", 0, "measured operations (0 = default)")
		threads = flag.String("threads", "", "comma-separated thread sweep")
		mainThr = flag.Int("mainthreads", 0, "thread count for single-point experiments")
		scanLen = flag.Int("scanlen", 0, "default range query length")
		seed    = flag.Int64("seed", 0, "workload seed")
		out     = flag.String("out", ".", "directory for BENCH_<exp>.json records (\"\" disables)")
		httpOn  = flag.String("http", "", "serve live observation JSON on this address (e.g. :7071)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <name> or -exp all")
		}
		return
	}

	scale := bench.Scale{Warm: *warm, Ops: *ops, MainThreads: *mainThr, ScanLen: *scanLen, Seed: *seed}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			scale.Threads = append(scale.Threads, n)
		}
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *httpOn != "" {
		// Live observation endpoint: the currently measured pool's
		// counters as JSON (503 between runs). cclstat -attach polls it.
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/", obs.Handler())
			if err := http.ListenAndServe(*httpOn, mux); err != nil {
				fmt.Fprintf(os.Stderr, "http listener: %v\n", err)
			}
		}()
		fmt.Printf("serving live observation on %s\n", *httpOn)
	}

	for _, e := range selected {
		start := time.Now()
		bench.StartReport(e.Name)
		tabs, err := runExperiment(e, scale)
		rep := bench.FinishReport()
		if err != nil {
			rep.Partial = true
			rep.Err = err.Error()
		}
		if *out != "" {
			if path, werr := rep.WriteFile(*out); werr != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, werr)
			} else {
				fmt.Printf("[wrote %s: %d phases]\n", path, len(rep.Phases))
			}
		}
		if err != nil {
			// An experiment died: print whatever phases completed so the
			// run is not a total loss, then fail the process.
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			if len(rep.Phases) > 0 {
				fmt.Fprintf(os.Stderr, "partial results (%d phases):\n", len(rep.Phases))
				for _, p := range rep.Phases {
					fmt.Fprintf(os.Stderr, "  %-28s %8.2f Mop/s  WA %.2f\n",
						p.Phase, p.MopsPerSec, p.WAFactor)
				}
			}
			os.Exit(1)
		}
		for _, t := range tabs {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s finished in %.1fs wall]\n\n", e.Name, time.Since(start).Seconds())
	}
}

// runExperiment runs one experiment, converting a panic into an error
// so the caller can still emit the phases recorded before the crash.
func runExperiment(e bench.Experiment, scale bench.Scale) (tabs []*bench.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return e.Run(scale)
}
