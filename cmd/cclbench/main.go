// Command cclbench regenerates the tables and figures of the CCL-BTree
// paper's evaluation (EuroSys '24, §5) on the software PM model.
//
// Usage:
//
//	cclbench -list                 # show available experiments
//	cclbench -exp fig3             # run one experiment
//	cclbench -exp all              # run everything
//	cclbench -exp fig10 -warm 500000 -ops 500000 -threads 1,24,48,96
//
// Sizes default to ≈1/500 of the paper's (which used 50 M warm keys and
// 50 M operations on real Optane hardware); throughput numbers are
// simulated-time and meant for shape comparison, not absolute match.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cclbtree/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment to run (or 'all')")
		warm    = flag.Int("warm", 0, "warm keys (0 = default)")
		ops     = flag.Int("ops", 0, "measured operations (0 = default)")
		threads = flag.String("threads", "", "comma-separated thread sweep")
		mainThr = flag.Int("mainthreads", 0, "thread count for single-point experiments")
		scanLen = flag.Int("scanlen", 0, "default range query length")
		seed    = flag.Int64("seed", 0, "workload seed")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-16s %s\n", e.Name, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <name> or -exp all")
		}
		return
	}

	scale := bench.Scale{Warm: *warm, Ops: *ops, MainThreads: *mainThr, ScanLen: *scanLen, Seed: *seed}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			scale.Threads = append(scale.Threads, n)
		}
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, ok := bench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tabs, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
		for _, t := range tabs {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s finished in %.1fs wall]\n\n", e.Name, time.Since(start).Seconds())
	}
}
