// Command cclserve runs the sharded NUMA-aware KV serving tier over a
// cclbtree.DB: the router + per-shard commit lanes + read session pool
// of internal/server, fronted by its closed-loop/open-loop load
// generator.
//
// Usage:
//
//	cclserve -bench                         # bounded self-driving run
//	cclserve -bench -shards 8 -clients 64 -ops 200000
//	cclserve -bench -open -queue 64         # open loop, shed on backpressure
//	cclserve                                # idle server; SIGINT shuts down
//
// The -bench mode is the smoke path CI drives: build the DB, start the
// server, run the load generator for a bounded number of operations,
// verify every reread, shut down gracefully, and print a JSON summary.
// Any failure — load error, self-verification mismatch, unclean
// shutdown — exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cclbtree"
	"cclbtree/internal/pmem"
	"cclbtree/internal/server"
)

func main() {
	var (
		shards   = flag.Int("shards", 4, "shard trees (NUMA-pinned round-robin)")
		sockets  = flag.Int("sockets", 2, "modeled PM sockets")
		devMB    = flag.Int64("devmb", 256, "modeled PM device MB per socket")
		queue    = flag.Int("queue", 0, "per-shard queue depth (0 = default 1024)")
		maxBatch = flag.Int("maxbatch", 0, "max ops per group commit (0 = default 64)")
		bench    = flag.Bool("bench", false, "run the load generator and exit")
		clients  = flag.Int("clients", 32, "concurrent load-generator clients")
		ops      = flag.Int("ops", 100000, "total load-generator operations")
		readFrac = flag.Float64("readfrac", 0.2, "fraction of ops issued as reads")
		open     = flag.Bool("open", false, "open-loop load (shed on backpressure)")
		scramble = flag.Bool("scramble", false, "uniform keys instead of clustered blocks")
	)
	flag.Parse()

	db, err := cclbtree.New(cclbtree.Config{
		Shards: *shards,
		Platform: pmem.Config{
			Sockets:     *sockets,
			DeviceBytes: *devMB << 20,
		},
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	srv, err := server.New(server.Config{DB: db, QueueDepth: *queue, MaxBatch: *maxBatch})
	if err != nil {
		fatal(err)
	}

	if !*bench {
		fmt.Fprintf(os.Stderr, "cclserve: serving %d shards on %d sockets; SIGINT to stop\n",
			db.Shards(), db.Pool().Sockets())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		<-ch
		srv.Close()
		fmt.Fprintln(os.Stderr, "cclserve: drained, bye")
		return
	}

	res, err := server.RunLoad(srv, server.Workload{
		Clients:   *clients,
		Ops:       *ops,
		ReadFrac:  *readFrac,
		Clustered: !*scramble,
		OpenLoop:  *open,
	})
	if err != nil {
		srv.Close()
		fatal(err)
	}
	srv.Close()

	// Graceful-shutdown check: the lanes are down, so new traffic must
	// be refused (this is what "drained" means).
	if err := srv.Put(1, 1); err == nil {
		fatal(fmt.Errorf("server accepted a write after Close"))
	}

	type summary struct {
		Shards int                `json:"shards"`
		Load   *server.LoadResult `json:"load"`
		Lanes  []server.LaneStats `json:"lanes"`
	}
	st := srv.Stats()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary{Shards: db.Shards(), Load: res, Lanes: st.Lanes}); err != nil {
		fatal(err)
	}
	if res.Misread > 0 {
		fatal(fmt.Errorf("%d self-verification failures", res.Misread))
	}
	if res.Writes == 0 {
		fatal(fmt.Errorf("no writes committed"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cclserve:", err)
	os.Exit(1)
}
