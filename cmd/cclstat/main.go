// Command cclstat is the observability front end: an ipmctl-style view
// of the software PM device model's counters.
//
// Two modes:
//
//	cclstat --replay BENCH_fig3.json     # render a recorded bench run
//	cclstat -attach http://:7071/        # live TUI against cclbench -http
//
// Replay mode prints each recorded phase (throughput, tail latency,
// amplification factors) and a per-scope media-byte bar chart showing
// which component — leaf buffers, the WAL, GC, splits, recovery — is
// responsible for the media traffic. Attach mode polls the live
// observation endpoint and redraws the same breakdown in place.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cclbtree/internal/obs"
)

func main() {
	var (
		replay   = flag.String("replay", "", "render a recorded BENCH_<name>.json")
		attach   = flag.String("attach", "", "poll a live observation URL (cclbench -http)")
		interval = flag.Duration("interval", time.Second, "attach-mode poll interval")
		once     = flag.Bool("once", false, "attach mode: fetch and render a single frame")
	)
	flag.Parse()

	switch {
	case *replay != "":
		rep, err := obs.ReadBenchReport(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		renderReport(os.Stdout, rep)
	case *attach != "":
		if err := attachLoop(*attach, *interval, *once); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// renderReport prints a recorded run: the per-phase table, then the
// aggregate per-scope breakdown.
func renderReport(w *os.File, rep *obs.BenchReport) {
	fmt.Fprintf(w, "# %s", rep.Name)
	if rep.Partial {
		fmt.Fprintf(w, "  [PARTIAL: %s]", firstLine(rep.Err))
	}
	fmt.Fprintln(w)
	if len(rep.Phases) == 0 {
		fmt.Fprintln(w, "(no phases recorded)")
		return
	}

	fmt.Fprintf(w, "%-28s %10s %10s %10s %7s %7s %7s\n",
		"phase", "Mop/s", "p50(ns)", "p99(ns)", "WA", "CLI", "hit%")
	for _, p := range rep.Phases {
		p50, p99 := "-", "-"
		if p.P50Nanos > 0 {
			p50 = fmt.Sprintf("%d", p.P50Nanos)
			p99 = fmt.Sprintf("%d", p.P99Nanos)
		}
		fmt.Fprintf(w, "%-28s %10.2f %10s %10s %7.2f %7.2f %6.1f%%\n",
			p.Phase, p.MopsPerSec, p50, p99, p.WAFactor, p.CLIFactor, 100*p.XPBufHitRate)
	}

	total := map[string]uint64{}
	var media uint64
	for _, p := range rep.Phases {
		for sc, v := range p.ScopeMediaBytes {
			total[sc] += v
		}
		media += p.MediaWriteBytes
	}
	fmt.Fprintf(w, "\nmedia writes by scope (%s total):\n", fmtBytes(media))
	renderBars(w, total, media)

	// Contention/heat tier: render the last phase that carried a
	// profile (profiles are cumulative since index creation, so the
	// last one subsumes the earlier ones for a single-index run).
	for i := len(rep.Phases) - 1; i >= 0; i-- {
		if p := rep.Phases[i].Profile; p != nil {
			fmt.Fprintf(w, "\nprofile (phase %s):\n", rep.Phases[i].Phase)
			renderProfile(w, p)
			break
		}
	}
}

// renderProfile draws the second obs tier — lock contention, critical-
// path segments, hot leaves — shared by replay and attach modes.
func renderProfile(w *os.File, p *obs.Profile) {
	if len(p.Locks) > 0 {
		fmt.Fprintf(w, "\nlock contention (wall ns, sampled):\n")
		fmt.Fprintf(w, "  %-12s %12s %10s %9s %9s %9s %9s\n",
			"class", "acquisitions", "contended", "wait p50", "wait p99", "wait max", "hold p99")
		for _, ls := range p.Locks {
			fmt.Fprintf(w, "  %-12s %12d %10d %9d %9d %9d %9d\n",
				ls.Class, ls.Acquisitions, ls.Contended,
				ls.WaitP50NS, ls.WaitP99NS, ls.WaitMaxNS, ls.HoldP99NS)
		}
	}
	if len(p.Segments) > 0 {
		opSum := map[string]uint64{}
		for _, sg := range p.Segments {
			opSum[sg.Op] += sg.SumNS
		}
		fmt.Fprintf(w, "\ncritical-path segments (virtual ns):\n")
		fmt.Fprintf(w, "  %-6s %-9s %9s %8s %8s %8s %7s\n",
			"op", "segment", "count", "p50", "p99", "p999", "share")
		for _, sg := range p.Segments {
			share := 0.0
			if t := opSum[sg.Op]; t > 0 {
				share = 100 * float64(sg.SumNS) / float64(t)
			}
			fmt.Fprintf(w, "  %-6s %-9s %9d %8d %8d %8d %6.1f%%\n",
				sg.Op, sg.Segment, sg.Count, sg.P50NS, sg.P99NS, sg.P999NS, share)
		}
	}
	if len(p.HotLeaves) > 0 {
		fmt.Fprintf(w, "\nhot leaves (epoch %d, %d dropped):\n", p.HeatEpoch, p.HeatDropped)
		max := p.HotLeaves[0].Score
		const width = 24
		for _, e := range p.HotLeaves {
			n := 0
			if max > 0 {
				n = int(float64(e.Score) / float64(max) * width)
			}
			if n == 0 && e.Score > 0 {
				n = 1
			}
			fmt.Fprintf(w, "  %#16x %s%s %8d  (r %d / w %d)\n",
				e.Leaf, strings.Repeat("█", n), strings.Repeat("·", width-n),
				e.Score, e.Reads, e.Writes)
		}
	}
}

// maxAttachFailures bounds attach mode's reconnection attempts: the
// endpoint restarting mid-session (cclbench re-exec'd, port briefly
// down) is survivable, but a dead endpoint should not keep a terminal
// spinning forever.
const maxAttachFailures = 20

// attachLoop polls the live endpoint and redraws one frame per tick.
// Fetch failures switch to a bounded reconnection loop: a visible
// "reconnecting" status line, exponential backoff capped at 8× the poll
// interval, and a hard stop after maxAttachFailures consecutive
// failures. Any successful fetch resets the budget, so an endpoint that
// restarts mid-session (new cclbench run on the same port) is picked
// up where it left off.
func attachLoop(url string, interval time.Duration, once bool) error {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: 5 * time.Second}
	first := true
	failures := 0
	for {
		o, err := fetchObservation(client, url)
		switch {
		case err != nil && once:
			return err
		case err != nil:
			failures++
			if failures >= maxAttachFailures {
				fmt.Println()
				return fmt.Errorf("giving up after %d consecutive failures: %v", failures, err)
			}
			backoff := interval << min(failures-1, 3)
			fmt.Printf("\r\x1b[K[reconnecting to %s: attempt %d/%d, retry in %s — %v]",
				url, failures, maxAttachFailures, backoff, err)
			time.Sleep(backoff)
			continue
		default:
			if failures > 0 {
				// Back after an outage: clear the status line and force a
				// full redraw (the endpoint may be a brand-new run).
				fmt.Print("\r\x1b[K")
				first = true
				failures = 0
			}
			if !first {
				// Redraw in place: home the cursor and clear below.
				fmt.Print("\x1b[H\x1b[J")
			} else if !once {
				fmt.Print("\x1b[2J\x1b[H")
			}
			renderObservation(os.Stdout, url, o)
			first = false
		}
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fetchObservation(client *http.Client, url string) (*obs.Observation, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("endpoint: %s", resp.Status)
	}
	var o obs.Observation
	if err := json.NewDecoder(resp.Body).Decode(&o); err != nil {
		return nil, err
	}
	return &o, nil
}

// renderObservation draws one live frame.
func renderObservation(w *os.File, url string, o *obs.Observation) {
	fmt.Fprintf(w, "cclstat — %s — %s\n\n", url, time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "  media writes   %12s      WA factor   %6.2f\n",
		fmtBytes(o.MediaWriteBytes), o.WAFactor)
	fmt.Fprintf(w, "  xpbuf writes   %12s      CLI factor  %6.2f\n",
		fmtBytes(o.XPBufWriteBytes), o.CLIFactor)
	fmt.Fprintf(w, "  user payload   %12s      xpbuf hit   %5.1f%%\n",
		fmtBytes(o.UserBytes), 100*o.XPBufWriteHitRate)
	fmt.Fprintf(w, "  media reads    %12s      evictions   %d\n",
		fmtBytes(o.MediaReadBytes), o.CacheEvictions)
	fmt.Fprintf(w, "\nmedia writes by scope:\n")
	renderBars(w, o.ScopeMediaBytes, o.MediaWriteBytes)
	if o.Profile != nil {
		renderProfile(w, o.Profile)
	}
}

// renderBars prints one bar per scope, widest contributor first.
func renderBars(w *os.File, byScope map[string]uint64, total uint64) {
	if total == 0 || len(byScope) == 0 {
		fmt.Fprintln(w, "  (no media writes)")
		return
	}
	scopes := make([]string, 0, len(byScope))
	for sc := range byScope {
		scopes = append(scopes, sc)
	}
	sort.Slice(scopes, func(i, j int) bool { return byScope[scopes[i]] > byScope[scopes[j]] })
	const width = 40
	for _, sc := range scopes {
		v := byScope[sc]
		frac := float64(v) / float64(total)
		n := int(frac*width + 0.5)
		if n == 0 && v > 0 {
			n = 1
		}
		fmt.Fprintf(w, "  %-9s %s%s %5.1f%%  %s\n",
			sc, strings.Repeat("█", n), strings.Repeat("·", width-n), 100*frac, fmtBytes(v))
	}
}

func fmtBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%dB", v)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
