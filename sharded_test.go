package cclbtree

import (
	"errors"
	"fmt"
	"testing"

	"cclbtree/internal/pmem"
)

func newShardedDB(t *testing.T, shards int, mut func(*Config)) *DB {
	t.Helper()
	cfg := Config{
		Shards:     shards,
		ChunkBytes: 16 << 10,
		Platform:   pmem.Config{Sockets: 2, DIMMsPerSocket: 2, DeviceBytes: 32 << 20, StrictPersist: true},
	}
	if mut != nil {
		mut(&cfg)
	}
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestShardedRoundtrip(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprint(shards), func(t *testing.T) {
			db := newShardedDB(t, shards, nil)
			if db.Shards() != shards {
				t.Fatalf("Shards() = %d", db.Shards())
			}
			s := db.Session(0)
			const n = 4000
			for k := uint64(1); k <= n; k++ {
				if err := s.Put(k, k*3); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(1); k <= n; k++ {
				v, ok := s.Get(k)
				if !ok || v != k*3 {
					t.Fatalf("Get(%d) = %d,%v", k, v, ok)
				}
			}
			if _, ok := s.Get(n + 99); ok {
				t.Fatal("found absent key")
			}
			if err := s.Delete(7); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(7); ok {
				t.Fatal("deleted key still visible")
			}
		})
	}
}

func TestShardRoutingStableAndSpread(t *testing.T) {
	db := newShardedDB(t, 8, nil)
	counts := make([]int, 8)
	for k := uint64(1); k <= 10000; k++ {
		i := db.ShardFor(k)
		if j := db.ShardFor(k); j != i {
			t.Fatalf("ShardFor(%d) unstable: %d then %d", k, i, j)
		}
		counts[i]++
	}
	for i, c := range counts {
		// A fair hash puts ~1250 of 10000 keys on each of 8 shards;
		// anything outside [800, 1700] means the mix is broken.
		if c < 800 || c > 1700 {
			t.Fatalf("shard %d got %d of 10000 keys; routing skewed: %v", i, c, counts)
		}
	}
}

func TestShardedOpenAutoDetect(t *testing.T) {
	db := newShardedDB(t, 4, nil)
	s := db.Session(0)
	const n = 3001
	for k := uint64(1); k <= n; k++ {
		if err := s.Put(k, k+100); err != nil {
			t.Fatal(err)
		}
	}
	pool := db.Pool()
	db.Close()
	pool.Crash()

	// Shards: 0 auto-detects the persisted count.
	db2, err := Open(pool, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Shards() != 4 {
		t.Fatalf("auto-detected %d shards, want 4", db2.Shards())
	}
	s2 := db2.Session(0)
	for k := uint64(1); k <= n; k++ {
		v, ok := s2.Get(k)
		if !ok || v != k+100 {
			t.Fatalf("lost key %d after crash: %d,%v", k, v, ok)
		}
	}

	// A wrong explicit count is rejected, not silently recovered.
	db2.Close()
	pool.Crash()
	if _, err := Open(pool, Config{Shards: 2}); err == nil {
		t.Fatal("Open with wrong shard count succeeded")
	}
	if _, err := Open(pool, Config{Shards: 4}); err != nil {
		t.Fatalf("Open with right shard count failed: %v", err)
	}
}

// TestCrossShardRangePageBoundaries pins ordering and completeness of
// the merged iterator across rangeChunk page edges: with hash routing,
// consecutive keys interleave arbitrarily across shards, so every
// shard's page boundary lands mid-stream of the merged order. A merge
// that concludes a shard is exhausted at a full page edge (instead of
// refilling before comparing) drops or reorders keys here.
func TestCrossShardRangePageBoundaries(t *testing.T) {
	db := newShardedDB(t, 4, nil)
	s := db.Session(0)
	// > 128 entries per shard so every shard pages at least thrice.
	const n = 4*rangeChunk*3 + 37
	for k := uint64(1); k <= n; k++ {
		if err := s.Put(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	want := uint64(1)
	for k, v := range s.Range(1) {
		if k != want {
			t.Fatalf("merged Range out of order or lossy: got key %d, want %d", k, want)
		}
		if v != k*2 {
			t.Fatalf("Range(%d) value %d", k, v)
		}
		want++
	}
	if want != n+1 {
		t.Fatalf("merged Range yielded %d keys, want %d", want-1, n)
	}
	// Mid-stream start, crossing page edges of all shards.
	want = n/2 + 1
	got := 0
	for k := range s.Range(n/2 + 1) {
		if k != want {
			t.Fatalf("Range(mid): got key %d, want %d", k, want)
		}
		want++
		got++
	}
	if got != n-n/2 {
		t.Fatalf("Range(mid) yielded %d keys, want %d", got, n-n/2)
	}
	// Early break is clean.
	count := 0
	for range s.Range(1) {
		if count++; count == 10 {
			break
		}
	}
	// Scan through the merged path honors the buffer bound.
	out := make([]KV, 100)
	if got := s.Scan(1, out); got != 100 {
		t.Fatalf("Scan = %d, want 100", got)
	}
	for i, kv := range out {
		if kv.Key != uint64(i+1) || kv.Value != kv.Key*2 {
			t.Fatalf("Scan[%d] = %+v", i, kv)
		}
	}
}

func TestCrossShardRangeVar(t *testing.T) {
	db := newShardedDB(t, 4, func(c *Config) { c.VarKV = true })
	s := db.Session(0)
	const n = 4*rangeChunk*2 + 11
	for i := 1; i <= n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		if err := s.PutVar(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := 1
	for k, v := range s.RangeVar(nil) {
		wantKey := fmt.Sprintf("key-%06d", want)
		if string(k) != wantKey {
			t.Fatalf("RangeVar out of order: got %q, want %q", k, wantKey)
		}
		if string(v) != fmt.Sprintf("val-%d", want) {
			t.Fatalf("RangeVar value %q for %q", v, k)
		}
		want++
	}
	if want != n+1 {
		t.Fatalf("RangeVar yielded %d keys, want %d", want-1, n)
	}
	page := s.ScanVar([]byte("key-000500"), 10)
	if len(page) != 10 || string(page[0].Key) != "key-000500" {
		t.Fatalf("ScanVar mid-stream: %d entries, first %q", len(page), page[0].Key)
	}
}

func TestShardedApplyBatch(t *testing.T) {
	db := newShardedDB(t, 4, nil)
	s := db.Session(0)
	var b Batch
	for k := uint64(1); k <= 500; k++ {
		b.Put(k, k)
	}
	b.Put(42, 4242) // same-key later op wins
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(42); v != 4242 {
		t.Fatalf("Get(42) = %d after batch", v)
	}
	for k := uint64(1); k <= 500; k++ {
		if k == 42 {
			continue
		}
		if v, ok := s.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v after batch", k, v, ok)
		}
	}
	// A malformed op anywhere rejects the whole batch before any shard
	// commits.
	var bad Batch
	for k := uint64(1000); k < 1100; k++ {
		bad.Put(k, k)
	}
	bad.Put(0, 1) // zero key: invalid
	if err := s.Apply(&bad); !errors.Is(err, ErrZeroKey) {
		t.Fatalf("Apply(bad) = %v, want ErrZeroKey", err)
	}
	for k := uint64(1000); k < 1100; k++ {
		if _, ok := s.Get(k); ok {
			t.Fatalf("key %d committed from a rejected batch", k)
		}
	}
}

func TestShardedMetricsAttribution(t *testing.T) {
	db := newShardedDB(t, 4, func(c *Config) { c.Metrics = true })
	s := db.Session(0)
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var sum uint64
	for i := 0; i < db.Shards(); i++ {
		c := db.ShardCounters(i)
		if c.Upserts == 0 {
			t.Fatalf("shard %d attributed zero upserts", i)
		}
		sum += c.Upserts
	}
	if sum != n {
		t.Fatalf("per-shard upserts sum to %d, want %d", sum, n)
	}
	agg := db.Metrics()
	if agg.Counters.Upserts != n {
		t.Fatalf("aggregate Upserts = %d", agg.Counters.Upserts)
	}
	if agg.Latency == nil {
		t.Fatal("aggregate latency snapshot missing with Metrics on")
	}
	h := agg.Latency.Hists["insert_ns"]
	if h == nil || h.Count != n {
		t.Fatalf("merged insert histogram count = %+v, want %d", h, n)
	}
	for i := 0; i < db.Shards(); i++ {
		m := db.ShardMetrics(i)
		if m.Latency == nil || m.Latency.Hists["insert_ns"].Count == 0 {
			t.Fatalf("shard %d latency attribution missing", i)
		}
	}
}

func TestServingSentinels(t *testing.T) {
	wrapped := fmt.Errorf("server: enqueue: %w", ErrBackpressure)
	if !errors.Is(wrapped, ErrBackpressure) {
		t.Fatal("wrapped ErrBackpressure not matched by errors.Is")
	}
	if errors.Is(wrapped, ErrShardClosed) {
		t.Fatal("ErrBackpressure matched ErrShardClosed")
	}
	closed := fmt.Errorf("server: shard 3: %w", ErrShardClosed)
	if !errors.Is(closed, ErrShardClosed) {
		t.Fatal("wrapped ErrShardClosed not matched by errors.Is")
	}
	if errors.Is(ErrShardClosed, ErrClosed) {
		t.Fatal("ErrShardClosed must be distinct from ErrClosed")
	}
}

func TestShardedSerialClock(t *testing.T) {
	// One session's ops across shards must consume serial virtual
	// time: the session clock after M ops is at least the sum of the
	// single-shard per-op times' order of magnitude — not M/shards.
	// (Cheap sanity: monotone nondecreasing serial clock that advances
	// on every shard's ops.)
	db := newShardedDB(t, 4, nil)
	s := db.Session(0)
	last := int64(0)
	for k := uint64(1); k <= 100; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
		if s.vt < last {
			t.Fatalf("serial clock went backwards: %d after %d", s.vt, last)
		}
		last = s.vt
	}
	if last == 0 {
		t.Fatal("serial clock never advanced")
	}
	// Every worker thread saw the serial floor at its last use.
	var mx int64
	for _, w := range s.ws {
		if now := w.Thread().Now(); now > mx {
			mx = now
		}
	}
	if mx != last {
		t.Fatalf("serial clock %d != max worker clock %d", last, mx)
	}
}
