package cclbtree

import (
	"bytes"
	"iter"
	"math"

	"cclbtree/internal/core"
)

// rangeChunk is how many entries each iterator page pulls per Scan.
const rangeChunk = 128

// shardCursor pages one shard's ascending fixed-key stream. The merge
// below peeks cursors and pops the global minimum; the subtle part is
// the paging boundary: a cursor whose page came back full may have
// more keys — possibly SMALLER than another cursor's current key — so
// an exhausted full page must refill before the merge compares
// anything against this shard again. Concluding "done" (or yielding a
// rival's key) at a full-page edge is exactly the interleaving bug the
// cross-shard regression test pins.
type shardCursor struct {
	w    *core.Worker
	buf  []KV
	n    int // entries in buf
	pos  int // next entry to yield
	next uint64
	done bool
}

func (c *shardCursor) refill() {
	c.n = c.w.Scan(c.next, len(c.buf), c.buf)
	c.pos = 0
	if c.n < len(c.buf) {
		c.done = true // short page: the shard has nothing past buf[n-1]
		return
	}
	last := c.buf[c.n-1].Key
	if last == math.MaxUint64 {
		c.done = true
		return
	}
	c.next = last + 1
}

// peek returns the cursor's current entry, refilling across page
// boundaries; ok is false only when the shard is exhausted.
func (c *shardCursor) peek() (KV, bool) {
	for c.pos == c.n {
		if c.done {
			return KV{}, false
		}
		c.refill()
	}
	return c.buf[c.pos], true
}

// Range returns an iterator over the live entries with key ≥ start in
// ascending order, for use with a range-over-func loop:
//
//	for k, v := range s.Range(1) { ... }
//
// The iterator pages through each shard with Scan and merges the
// streams in key order (every key lives on exactly one shard, so the
// merge never sees duplicates). It sees a per-page-consistent
// snapshot: entries written after iteration passes their key are not
// revisited. Breaking out of the loop early is cheap; nothing is held
// between pages.
func (s *Session) Range(start uint64) iter.Seq2[uint64, uint64] {
	if len(s.ws) == 1 {
		return s.rangeSingle(start)
	}
	return func(yield func(uint64, uint64) bool) {
		// All shards participate: sync every worker up to the serial
		// clock once, and settle the slowest at the end.
		cursors := make([]*shardCursor, len(s.ws))
		for i := range cursors {
			cursors[i] = &shardCursor{w: s.worker(i), buf: make([]KV, rangeChunk), next: start}
		}
		defer func() {
			for _, c := range cursors {
				s.settle(c.w)
			}
		}()
		for {
			best := -1
			var bestKV KV
			for i, c := range cursors {
				kv, ok := c.peek()
				if !ok {
					continue
				}
				if best < 0 || kv.Key < bestKV.Key {
					best, bestKV = i, kv
				}
			}
			if best < 0 {
				return
			}
			cursors[best].pos++
			if !yield(bestKV.Key, bestKV.Value) {
				return
			}
		}
	}
}

func (s *Session) rangeSingle(start uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		buf := make([]KV, rangeChunk)
		for {
			n := s.ws[0].Scan(start, len(buf), buf)
			for _, kv := range buf[:n] {
				if !yield(kv.Key, kv.Value) {
					return
				}
			}
			if n < rangeChunk {
				return
			}
			last := buf[n-1].Key
			if last == math.MaxUint64 {
				return
			}
			start = last + 1
		}
	}
}

// varCursor is shardCursor for variable-size keys: pages resume at the
// last key's byte-order successor (the key with a zero byte appended).
type varCursor struct {
	w    *core.Worker
	page []KVBytes
	pos  int
	next []byte
	done bool
}

func (c *varCursor) refill() {
	c.page = c.w.ScanVar(c.next, rangeChunk)
	c.pos = 0
	if len(c.page) < rangeChunk {
		c.done = true
		return
	}
	last := c.page[len(c.page)-1].Key
	c.next = append(append(make([]byte, 0, len(last)+1), last...), 0)
}

func (c *varCursor) peek() (KVBytes, bool) {
	for c.pos == len(c.page) {
		if c.done {
			return KVBytes{}, false
		}
		c.refill()
	}
	return c.page[c.pos], true
}

// RangeVar returns an iterator over the live variable-size entries
// with key ≥ start in ascending byte order, merged across shards
// (requires Config.VarKV). A nil start begins at the smallest key.
// Yielded slices are fresh copies owned by the caller.
func (s *Session) RangeVar(start []byte) iter.Seq2[[]byte, []byte] {
	if len(s.ws) == 1 {
		return s.rangeVarSingle(start)
	}
	return func(yield func([]byte, []byte) bool) {
		cursors := make([]*varCursor, len(s.ws))
		for i := range cursors {
			cursors[i] = &varCursor{w: s.worker(i), next: start}
		}
		defer func() {
			for _, c := range cursors {
				s.settle(c.w)
			}
		}()
		for {
			best := -1
			var bestKV KVBytes
			for i, c := range cursors {
				kv, ok := c.peek()
				if !ok {
					continue
				}
				if best < 0 || bytes.Compare(kv.Key, bestKV.Key) < 0 {
					best, bestKV = i, kv
				}
			}
			if best < 0 {
				return
			}
			cursors[best].pos++
			if !yield(bestKV.Key, bestKV.Value) {
				return
			}
		}
	}
}

func (s *Session) rangeVarSingle(start []byte) iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		for {
			page := s.ws[0].ScanVar(start, rangeChunk)
			for _, kv := range page {
				if !yield(kv.Key, kv.Value) {
					return
				}
			}
			if len(page) < rangeChunk {
				return
			}
			// Resume just past the last yielded key: its successor in
			// byte order is the key with a zero byte appended.
			last := page[len(page)-1].Key
			start = append(append(make([]byte, 0, len(last)+1), last...), 0)
		}
	}
}
