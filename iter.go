package cclbtree

import (
	"iter"
	"math"
)

// rangeChunk is how many entries each iterator page pulls per Scan.
const rangeChunk = 128

// Range returns an iterator over the live entries with key ≥ start in
// ascending order, for use with a range-over-func loop:
//
//	for k, v := range s.Range(1) { ... }
//
// The iterator pages through the tree with Scan, so it sees a
// per-page-consistent snapshot: entries written after iteration passes
// their key are not revisited. Breaking out of the loop early is
// cheap; nothing is held between pages.
func (s *Session) Range(start uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		buf := make([]KV, rangeChunk)
		for {
			n := s.Scan(start, buf)
			for _, kv := range buf[:n] {
				if !yield(kv.Key, kv.Value) {
					return
				}
			}
			if n < rangeChunk {
				return
			}
			last := buf[n-1].Key
			if last == math.MaxUint64 {
				return
			}
			start = last + 1
		}
	}
}

// RangeVar returns an iterator over the live variable-size entries
// with key ≥ start in ascending byte order (requires Config.VarKV).
// A nil start begins at the smallest key. Yielded slices are fresh
// copies owned by the caller.
func (s *Session) RangeVar(start []byte) iter.Seq2[[]byte, []byte] {
	return func(yield func([]byte, []byte) bool) {
		for {
			page := s.ScanVar(start, rangeChunk)
			for _, kv := range page {
				if !yield(kv.Key, kv.Value) {
					return
				}
			}
			if len(page) < rangeChunk {
				return
			}
			// Resume just past the last yielded key: its successor in
			// byte order is the key with a zero byte appended.
			last := page[len(page)-1].Key
			start = append(append(make([]byte, 0, len(last)+1), last...), 0)
		}
	}
}
