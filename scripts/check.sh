#!/usr/bin/env sh
# CI gate: a superset of the tier-1 verify (`go build ./... && go test
# ./...`, see ROADMAP.md). Adds gofmt, vet, the persistence-discipline
# linter (test files included), and a race pass over the packages that
# exercise shared PM state.
set -eux

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
# All rules (PL001–PL015, whole-program layer included) over every
# package, test files included, with a wall-clock budget so analyzer
# regressions surface as CI failures rather than slow drift. Built as
# a binary once: the cache gates below need repeat invocations, and
# `go run` would charge compile time against the budget. The cold run
# also emits the SARIF artifact CI can upload to code scanning.
lintdir=$(mktemp -d)
go build -o "$lintdir/persistlint" ./cmd/persistlint
# PL010 pre-gate: the seqlock read path lives in internal/core, and a
# missed re-validation there is exactly the torn-read bug the torture
# oracle hunts — fail fast on it before the expensive suites run.
"$lintdir/persistlint" -tests -only PL010 ./internal/core/...
"$lintdir/persistlint" -tests -stats -budget 10s \
    -cache "$lintdir/repocache" -sarif "$lintdir/persistlint.sarif" ./...
grep -q '"version": "2.1.0"' "$lintdir/persistlint.sarif"
grep -q '"id": "PL015"' "$lintdir/persistlint.sarif"

# Warm-cache gate on the same configuration: the replay must be at
# least 2x faster than the analysis it cached (the printed speedup_x
# comes from the entry's recorded cold time vs this run's wall clock).
"$lintdir/persistlint" -tests -stats -budget 10s \
    -cache "$lintdir/repocache" ./... 2> "$lintdir/repo_warm.err"
grep -q 'cache hit' "$lintdir/repo_warm.err"
speedup=$(sed -n 's/.*speedup_x=\([0-9.]*\).*/\1/p' "$lintdir/repo_warm.err")
awk -v s="$speedup" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }'

# Self-lint + cache determinism: the golden corpus must parse and
# yield findings (exit 1 — exit 2 would mean a corpus file stopped
# parsing, exit 0 that the corpus stopped exercising the rules), and
# the warm replay must print byte-for-byte what the cold run printed.
set +e
"$lintdir/persistlint" -tests -json -cache "$lintdir/corpuscache" \
    internal/analysis/persist/testdata > "$lintdir/cold.json" 2>/dev/null
corpus_cold=$?
"$lintdir/persistlint" -tests -json -cache "$lintdir/corpuscache" \
    internal/analysis/persist/testdata > "$lintdir/warm.json" 2> "$lintdir/corpus_warm.err"
corpus_warm=$?
set -e
test "$corpus_cold" -eq 1
test "$corpus_warm" -eq 1
grep -q 'cache hit' "$lintdir/corpus_warm.err"
cmp "$lintdir/cold.json" "$lintdir/warm.json"
rm -rf "$lintdir"
go test ./...
go test -race -short ./internal/core/... ./internal/pmem/... ./internal/obs/...
go test -race -short ./internal/server
go test -race -run TestTortureShort ./internal/torture

# Batch-path acceptance smoke (group commit must beat per-op writes on
# virtual-time throughput and CLI amplification) and the public godoc
# examples covering Apply and the Range iterators.
go test -run TestBatchSpeedup ./internal/bench
go test -run Example .
go test -race -run 'TestPublicBatch|TestPublicRange' .

# Observability-tier gates. First the profiler overhead budget: the
# instrumented lock sites, heat touches and span records must stay
# allocation-free and under obs.ProfilerBudgetNS each (the test prints
# one OBS_OVERHEAD line per path; grep proves it ran rather than
# silently skipping).
obs_overhead=$(go test -run TestObsOverheadBudget -count=1 -v ./internal/obs)
echo "$obs_overhead" | grep OBS_OVERHEAD

# Perf-regression tripwire: one ycsbb run at the pinned gate scale,
# compared against the checked-in baseline (exit 3 = regressed). The
# planted-regressed baseline must trip the gate — proving the gate can
# actually fail — and the real baseline must pass.
# (built as a binary: `go run` collapses the child's exit code to 1,
# and the gate's contract is the distinct exit 3.)
perfdir=$(mktemp -d)
go build -o "$perfdir/cclbench" ./cmd/cclbench
"$perfdir/cclbench" -exp ycsbb -warm 20000 -ops 20000 -mainthreads 8 -out "$perfdir" >/dev/null
set +e
"$perfdir/cclbench" -compare scripts/perf_baseline_regressed.json -against "$perfdir/BENCH_ycsbb.json" >/dev/null 2>&1
planted=$?
set -e
test "$planted" -eq 3
"$perfdir/cclbench" -compare scripts/perf_baseline.json -against "$perfdir/BENCH_ycsbb.json"

# Read-scaling gate: the lock-free read path must hold its YCSB-C
# numbers (both series — a locked-ablation speedup would also hide a
# lock-free regression if only one side were gated).
"$perfdir/cclbench" -exp ycsbc -warm 20000 -ops 20000 -out "$perfdir" >/dev/null
"$perfdir/cclbench" -compare scripts/perf_baseline_ycsbc.json -against "$perfdir/BENCH_ycsbc.json"
rm -rf "$perfdir"

# Serving-tier gates. The cclserve smoke starts the server, drives the
# load generator for a bounded self-verifying run, and shuts down
# gracefully — any load error, misread, or post-Close acceptance makes
# the binary exit non-zero (set -e fails the script). Then the shard
# scaling acceptance: 8 shards >= 3x 1 shard on clustered insert, with
# per-shard lane attribution present.
servedir=$(mktemp -d)
go build -o "$servedir/cclserve" ./cmd/cclserve
"$servedir/cclserve" -bench -shards 4 -clients 16 -ops 20000 > "$servedir/serve.json"
grep -q '"misread": 0' "$servedir/serve.json"
rm -rf "$servedir"
go test -run TestShardScaling ./internal/bench
go test -race -run TestShardedCrashDurablePrefix .

# Read-path acceptance: lock-free reads >= 3x the LockedReads ablation
# at 8 threads, and the torture oracle proves it still has teeth by
# catching a planted skipped-recheck (torn optimistic read) bug.
go test -run TestReadScaling ./internal/bench
go test -run TestTortureCatchesSkippedReadRecheck ./internal/torture

# Short fuzz smokes: each target gets 10s of coverage-guided input
# generation on top of its checked-in corpus.
go test -run '^$' -fuzz FuzzWALRecordParse -fuzztime 10s ./internal/wal
go test -run '^$' -fuzz FuzzRecoveryScan -fuzztime 10s ./internal/core
go test -run '^$' -fuzz FuzzVarKVRoundTrip -fuzztime 10s ./internal/core
