#!/usr/bin/env sh
# CI gate: a superset of the tier-1 verify (`go build ./... && go test
# ./...`, see ROADMAP.md). Adds gofmt, vet, the persistence-discipline
# linter (test files included), and a race pass over the packages that
# exercise shared PM state.
set -eux

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go run ./cmd/persistlint -tests -stats ./...
go test ./...
go test -race -short ./internal/core/... ./internal/pmem/... ./internal/obs/...
go test -race -run TestTortureShort ./internal/torture

# Batch-path acceptance smoke (group commit must beat per-op writes on
# virtual-time throughput and CLI amplification) and the public godoc
# examples covering Apply and the Range iterators.
go test -run TestBatchSpeedup ./internal/bench
go test -run Example .
go test -race -run 'TestPublicBatch|TestPublicRange' .

# Short fuzz smokes: each target gets 10s of coverage-guided input
# generation on top of its checked-in corpus.
go test -run '^$' -fuzz FuzzWALRecordParse -fuzztime 10s ./internal/wal
go test -run '^$' -fuzz FuzzRecoveryScan -fuzztime 10s ./internal/core
go test -run '^$' -fuzz FuzzVarKVRoundTrip -fuzztime 10s ./internal/core
