package cclbtree

import (
	"bytes"
	"testing"

	"cclbtree/internal/pmem"
)

func smallConfig() Config {
	return Config{
		ChunkBytes: 16 << 10,
		Platform: pmem.Config{
			Sockets:        2,
			DIMMsPerSocket: 2,
			DeviceBytes:    32 << 20,
		},
	}
}

func TestPublicQuickstart(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 2000; i++ {
		if err := s.Put(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := s.Get(1000)
	if !ok || v != 2000 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if err := s.Delete(1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(1000); ok {
		t.Fatal("deleted key found")
	}
	out := make([]KV, 5)
	n := s.Scan(50, out)
	if n != 5 || out[0].Key != 50 || out[4].Key != 54 {
		t.Fatalf("scan: n=%d %v", n, out[:n])
	}
}

func TestPublicCrashRecovery(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session(0)
	for i := uint64(1); i <= 3000; i++ {
		_ = s.Put(i, i+5)
	}
	db.Close()
	db.Pool().Crash()
	db2, err := Open(db.Pool(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session(0)
	for i := uint64(1); i <= 3000; i++ {
		v, ok := s2.Get(i)
		if !ok || v != i+5 {
			t.Fatalf("lost key %d after crash: %d,%v", i, v, ok)
		}
	}
}

func TestPublicVarKV(t *testing.T) {
	cfg := smallConfig()
	cfg.VarKV = true
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	if err := s.PutVar([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.GetVar([]byte("hello"))
	if !ok || !bytes.Equal(v, []byte("world")) {
		t.Fatalf("GetVar = %q,%v", v, ok)
	}
	res := s.ScanVar([]byte("h"), 10)
	if len(res) != 1 || string(res[0].Key) != "hello" {
		t.Fatalf("ScanVar = %v", res)
	}
}

func TestPublicLargeValues(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	big := bytes.Repeat([]byte{7}, 300)
	if err := s.PutLargeValue(42, big); err != nil {
		t.Fatal(err)
	}
	v, ok := s.GetLargeValue(42)
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("large value roundtrip failed")
	}
}

func TestPublicStatsSurface(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 1000; i++ {
		_ = s.Put(i, i)
	}
	db.Pool().DrainXPBuffers()
	st := db.Pool().Stats()
	if st.MediaWriteBytes == 0 || st.XPBufWriteBytes == 0 {
		t.Fatalf("hardware counters empty: %+v", st)
	}
	c := db.Counters()
	if c.Upserts != 1000 || c.LoggedWrites == 0 {
		t.Fatalf("tree counters wrong: %+v", c)
	}
	d, p := db.MemoryUsage()
	if d <= 0 || p <= 0 {
		t.Fatalf("memory usage: %d %d", d, p)
	}
}

func TestPublicAblationConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{Nbatch: -1},
		{NaiveLogging: true},
		{GC: GCNaive, ChunkBytes: 8 << 10, THlog: 0.05},
	} {
		c := smallConfig()
		c.Nbatch = cfg.Nbatch
		c.NaiveLogging = cfg.NaiveLogging
		c.GC = cfg.GC
		c.THlog = cfg.THlog
		db, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		s := db.Session(0)
		for i := uint64(1); i <= 2000; i++ {
			_ = s.Put(i, i)
		}
		for i := uint64(1); i <= 2000; i++ {
			if v, ok := s.Get(i); !ok || v != i {
				t.Fatalf("cfg %+v: key %d = %d,%v", cfg, i, v, ok)
			}
		}
		db.Close()
	}
}
