// Package cclbtree is a Go implementation of CCL-BTree, the
// crash-consistent locality-aware B+-tree for persistent memory from
// EuroSys '24 ("CCL-BTree: A Crash-Consistent Locality-Aware B+-Tree
// for Reducing XPBuffer-Induced Write Amplification in Persistent
// Memory", Li et al.).
//
// Because Go exposes neither cacheline-flush instructions nor Optane
// hardware, the tree runs on a software persistent-memory device model
// (see internal/pmem) that reproduces the two-level write-amplification
// behaviour of real PM: a CPU-cache/flush layer (64 B cachelines, ADR
// semantics) over an XPBuffer/media layer (256 B XPLines). The model
// provides ipmctl-style hardware counters, power-failure injection, and
// a virtual-time cost model, so the paper's experiments — and your own
// workloads — can be measured for CLI-/XBI-amplification and simulated
// throughput.
//
// A DB owns one or more CCL-BTrees. With the default Config.Shards of
// 1 it is exactly the paper's single tree; with N > 1 it carves the
// pool into N per-socket PM arenas and runs one independent tree per
// arena, each pinned to a NUMA socket round-robin, routing every
// operation by key hash. Range and RangeVar merge the shard streams
// back into one ordered iterator. The sharded form is the storage
// layer of the serving tier (internal/server, cmd/cclserve).
//
// Quick start:
//
//	db, _ := cclbtree.New(cclbtree.Config{})
//	s := db.Session(0)                  // one Session per goroutine
//	_ = s.Put(42, 1000)
//	v, ok := s.Get(42)                  // 1000, true
//	db.Pool().Crash()                   // power failure
//	db2, _ := cclbtree.Open(db.Pool(), cclbtree.Config{})
//	v, ok = db2.Session(0).Get(42)      // still 1000, true
package cclbtree

import (
	"fmt"
	"sync"

	"cclbtree/internal/core"
	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// GCPolicy selects the log-reclamation strategy.
type GCPolicy = core.GCPolicy

// GC policies (§3.4 of the paper; GCNaive and GCOff exist for the
// ablation experiments).
const (
	GCLocalityAware = core.GCLocalityAware
	GCNaive         = core.GCNaive
	GCOff           = core.GCOff
)

// Config configures a DB and, optionally, the PM platform under it.
// The zero value reproduces the paper's defaults (one shard, Nbatch 2,
// THlog 20%, locality-aware GC, 4 MB log chunks, two-socket ADR
// platform).
type Config struct {
	// Shards is the number of independent shard trees the DB runs
	// (0 and 1 both mean one tree covering the whole device, today's
	// behaviour). With N > 1 the pool is carved into N equal per-socket
	// PM arenas; shard i lives in arena i, NUMA-pinned to socket
	// i mod Sockets (superblock, WAL chunks, leaves, GC and recovery
	// all stay on that socket), and keys route to shards by hash.
	// The shard count is recorded persistently: Open with Shards 0
	// auto-detects it, Open with a mismatched count fails.
	Shards int
	// Nbatch is the buffer-node capacity; 0 means the default (2),
	// -1 disables buffering (the paper's "Base" ablation).
	Nbatch int
	// THlog is the GC trigger ratio (log bytes / leaf bytes); 0 means
	// the default 0.20.
	THlog float64
	// GC selects the reclamation policy.
	GC GCPolicy
	// NaiveLogging logs trigger writes too (the "+BNode" ablation);
	// default is write-conservative logging.
	NaiveLogging bool
	// VarKV switches the tree to variable-size []byte keys and values
	// (PutVar/GetVar/...). Fixed 8 B operations are rejected.
	VarKV bool
	// ChunkBytes overrides the WAL chunk size (default 4 MB).
	ChunkBytes int
	// Metrics enables per-operation latency histograms, retrievable
	// via DB.Metrics. Off by default (zero overhead when off).
	Metrics bool
	// LockedReads makes Get/Scan take each buffer node's version lock
	// instead of the default lock-free optimistic (seqlock) traversal,
	// and charges the modeled cacheline-handoff cost a shared lock word
	// incurs per peer session. It exists as the ablation baseline for
	// the read-scaling experiments; leave it off in normal use.
	LockedReads bool
	// Tracer, when non-nil, receives ring-buffer events from the tree
	// (inserts, flushes, splits, GC rounds, ...). Enable it with
	// Tracer.Enable; a disabled tracer costs one atomic load per event
	// site. Pair with Pool().SetDeviceTracer(tracer.DeviceHook()) to
	// interleave device-level eviction events.
	Tracer *obs.Tracer
	// Platform overrides the PM device model configuration; zero
	// fields take defaults (two sockets, 4 DIMMs each, 256 MB/socket).
	Platform pmem.Config
}

// DB is a CCL-BTree store: a set of Config.Shards independent shard
// trees on one PM pool, each NUMA-pinned to a socket. Operations are
// issued through per-goroutine Sessions, which route by key hash.
type DB struct {
	pool   *pmem.Pool
	shards []*core.Tree
}

// Tree is the pre-sharding name of DB.
//
// Deprecated: use DB. The single-tree Tree API is exactly a DB with
// Config.Shards = 1; the alias exists so existing callers keep
// compiling and will be removed in a future release.
type Tree = DB

func (c Config) coreOptions(shard, shards, sockets int) core.Options {
	return core.Options{
		Nbatch:       c.Nbatch,
		THlog:        c.THlog,
		GC:           c.GC,
		NaiveLogging: c.NaiveLogging,
		VarKV:        c.VarKV,
		ChunkBytes:   c.ChunkBytes,
		Metrics:      c.Metrics,
		Tracer:       c.Tracer,
		LockedReads:  c.LockedReads,
		HomeSocket:   shard % sockets,
		ArenaIndex:   shard,
		ArenaCount:   shards,
	}
}

func (c Config) shardCount() (int, error) {
	switch {
	case c.Shards < 0:
		return 0, fmt.Errorf("cclbtree: %d shards impossible", c.Shards)
	case c.Shards == 0:
		return 1, nil
	}
	return c.Shards, nil
}

// New creates a fresh DB on a new PM pool built from cfg.Platform.
func New(cfg Config) (*DB, error) {
	pool := pmem.NewPool(cfg.Platform)
	return NewOnPool(pool, cfg)
}

// NewOnPool creates a fresh DB on an existing pool (e.g. one shared
// with a benchmark harness).
func NewOnPool(pool *pmem.Pool, cfg Config) (*DB, error) {
	n, err := cfg.shardCount()
	if err != nil {
		return nil, err
	}
	db := &DB{pool: pool, shards: make([]*core.Tree, n)}
	for i := range db.shards {
		tr, err := core.New(pool, cfg.coreOptions(i, n, pool.Sockets()))
		if err != nil {
			return nil, fmt.Errorf("cclbtree: shard %d: %w", i, err)
		}
		db.shards[i] = tr
	}
	return db, nil
}

// Open recovers a DB previously created on pool, after a crash
// (Pool.Crash) or a restart (Pool.LoadPersistent). Each shard walks
// its persistent leaf list and replays its write-ahead logs, per §3.3
// of the paper. cfg.Shards 0 auto-detects the persisted shard count; a
// non-zero count must match the one the DB was created with.
func Open(pool *pmem.Pool, cfg Config) (*DB, error) {
	t, _, err := OpenWithStats(pool, cfg, 1)
	return t, err
}

// RecoveryStats describes a recovery run.
type RecoveryStats = core.RecoveryStats

// OpenWithStats is Open with parallel recovery and statistics (Fig 17).
// Shards recover concurrently; the returned stats sum the per-shard
// counters, and VirtualNS is the slowest shard (they run in parallel
// on independent arenas).
func OpenWithStats(pool *pmem.Pool, cfg Config, threads int) (*DB, *RecoveryStats, error) {
	n := cfg.Shards
	if n < 0 {
		return nil, nil, fmt.Errorf("cclbtree: %d shards impossible", n)
	}
	if n == 0 {
		probed, err := core.ProbeArenaCount(pool)
		if err != nil {
			return nil, nil, fmt.Errorf("cclbtree: %w", err)
		}
		n = probed
	}
	db := &DB{pool: pool, shards: make([]*core.Tree, n)}
	agg := &RecoveryStats{}
	errs := make([]error, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range db.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, st, err := core.Open(pool, cfg.coreOptions(i, n, pool.Sockets()), threads)
			if err != nil {
				errs[i] = fmt.Errorf("cclbtree: shard %d: %w", i, err)
				return
			}
			db.shards[i] = tr
			mu.Lock()
			agg.Leaves += st.Leaves
			agg.ChunksScanned += st.ChunksScanned
			agg.EntriesSeen += st.EntriesSeen
			agg.EntriesReplayed += st.EntriesReplayed
			agg.EntriesStale += st.EntriesStale
			agg.EntriesDropped += st.EntriesDropped
			agg.EmptyLeavesReclaimed += st.EmptyLeavesReclaimed
			if st.VirtualNS > agg.VirtualNS {
				agg.VirtualNS = st.VirtualNS
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return db, agg, nil
}

// Pool returns the underlying PM pool (stats, crash injection,
// persistence to disk).
func (db *DB) Pool() *pmem.Pool { return db.pool }

// Shards reports the number of shard trees.
func (db *DB) Shards() int { return len(db.shards) }

// ShardFor reports which shard a fixed 8 B key routes to. The hash is
// a stable bit-mix (identical across processes and restarts), so the
// serving tier can route before touching the DB.
func (db *DB) ShardFor(key uint64) int { return db.shardFor(key) }

// ShardForVar reports which shard a variable-size key routes to.
func (db *DB) ShardForVar(key []byte) int { return db.shardForBytes(key) }

// ShardHomeSocket reports the NUMA socket shard i is pinned to. The
// serving tier uses it to place each shard's commit lane on the
// shard's socket.
func (db *DB) ShardHomeSocket(i int) int { return db.shards[i].Options().HomeSocket }

// StartGCAsync launches one log-reclamation round per shard in the
// background (Fig 14's explicit trigger) and returns immediately.
func (db *DB) StartGCAsync() {
	for _, tr := range db.shards {
		tr.StartGCAsync()
	}
}

// WaitGC blocks until every shard's in-flight GC round, if any,
// completes.
func (db *DB) WaitGC() {
	for _, tr := range db.shards {
		tr.WaitGC()
	}
}

// ForceGC runs a log-reclamation round on every shard synchronously.
func (db *DB) ForceGC() {
	for _, tr := range db.shards {
		tr.ForceGC()
	}
}

// PeakLogBytes reports the largest live WAL volume observed, summed
// across shards (Table 2's "peak log size").
func (db *DB) PeakLogBytes() int64 {
	var total int64
	for _, tr := range db.shards {
		total += tr.PeakLogBytes()
	}
	return total
}

// Counters returns behavioral statistics summed across shards.
//
// Deprecated: use Metrics().Counters for the aggregate or
// ShardCounters for per-shard attribution; Counters remains as a
// convenience for single-shard callers.
func (db *DB) Counters() core.Counters {
	var c core.Counters
	for _, tr := range db.shards {
		c = c.Add(tr.Counters())
	}
	return c
}

// ShardCounters returns one shard's behavioral statistics.
func (db *DB) ShardCounters(i int) core.Counters { return db.shards[i].Counters() }

// Metrics returns the DB-wide observability snapshot: behavioral
// counters summed across shards plus, when Config.Metrics is on,
// latency histograms merged across shards (bucket-exact).
func (db *DB) Metrics() core.TreeMetrics {
	if len(db.shards) == 1 {
		return db.shards[0].Metrics()
	}
	var agg core.TreeMetrics
	for _, tr := range db.shards {
		m := tr.Metrics()
		agg.Counters = agg.Counters.Add(m.Counters)
		if m.Latency != nil {
			if agg.Latency == nil {
				agg.Latency = &obs.Snapshot{}
			}
			agg.Latency.Merge(m.Latency)
		}
	}
	return agg
}

// ShardMetrics returns one shard's counters and latency histograms —
// the per-shard attribution the serving tier and the shards benchmark
// report.
func (db *DB) ShardMetrics(i int) core.TreeMetrics { return db.shards[i].Metrics() }

// Observe snapshots the pool's device counters flattened for display or
// JSON export, including the per-scope media-byte attribution. Device
// counters are pool-wide; for per-shard attribution use ShardMetrics
// and ShardProfile.
func (db *DB) Observe() obs.Observation { return obs.Observe(db.pool) }

// Profile snapshots the contention/heat tier of shard 0: per-class
// lock statistics, per-segment critical-path latency attribution, and
// the hottest leaves. All slices are empty unless Config.Metrics is
// on. Shards contend independently, so a sharded DB has no meaningful
// merged profile — use ShardProfile per shard.
func (db *DB) Profile() obs.Profile { return db.shards[0].Profile() }

// ShardProfile snapshots one shard's contention/heat tier.
func (db *DB) ShardProfile(i int) obs.Profile { return db.shards[i].Profile() }

// MemoryUsage returns modeled DRAM bytes and PM bytes in use, summed
// across shards.
func (db *DB) MemoryUsage() (dramBytes, pmBytes int64) {
	for _, tr := range db.shards {
		d, p := tr.MemoryUsage()
		dramBytes += d
		pmBytes += p
	}
	return dramBytes, pmBytes
}

// Close stops every shard's background garbage collection. Call it
// before Pool.Crash (a real power failure halts every thread at once)
// or when abandoning the DB; the DB must not be used afterwards.
func (db *DB) Close() {
	for _, tr := range db.shards {
		tr.Freeze()
	}
}

// IsIndirect reports whether a value word is an indirection pointer to
// an out-of-band blob rather than an inline 8 B value.
func IsIndirect(word uint64) bool { return core.IsBlobWord(word) }
