// Package cclbtree is a Go implementation of CCL-BTree, the
// crash-consistent locality-aware B+-tree for persistent memory from
// EuroSys '24 ("CCL-BTree: A Crash-Consistent Locality-Aware B+-Tree
// for Reducing XPBuffer-Induced Write Amplification in Persistent
// Memory", Li et al.).
//
// Because Go exposes neither cacheline-flush instructions nor Optane
// hardware, the tree runs on a software persistent-memory device model
// (see internal/pmem) that reproduces the two-level write-amplification
// behaviour of real PM: a CPU-cache/flush layer (64 B cachelines, ADR
// semantics) over an XPBuffer/media layer (256 B XPLines). The model
// provides ipmctl-style hardware counters, power-failure injection, and
// a virtual-time cost model, so the paper's experiments — and your own
// workloads — can be measured for CLI-/XBI-amplification and simulated
// throughput.
//
// Quick start:
//
//	db, _ := cclbtree.New(cclbtree.Config{})
//	s := db.Session(0)                  // one Session per goroutine
//	_ = s.Put(42, 1000)
//	v, ok := s.Get(42)                  // 1000, true
//	db.Pool().Crash()                   // power failure
//	db2, _ := cclbtree.Open(db.Pool(), cclbtree.Config{})
//	v, ok = db2.Session(0).Get(42)      // still 1000, true
package cclbtree

import (
	"fmt"

	"cclbtree/internal/core"
	"cclbtree/internal/obs"
	"cclbtree/internal/pmem"
)

// GCPolicy selects the log-reclamation strategy.
type GCPolicy = core.GCPolicy

// GC policies (§3.4 of the paper; GCNaive and GCOff exist for the
// ablation experiments).
const (
	GCLocalityAware = core.GCLocalityAware
	GCNaive         = core.GCNaive
	GCOff           = core.GCOff
)

// Config configures a tree and, optionally, the PM platform under it.
// The zero value reproduces the paper's defaults (Nbatch 2, THlog 20%,
// locality-aware GC, 4 MB log chunks, two-socket ADR platform).
type Config struct {
	// Nbatch is the buffer-node capacity; 0 means the default (2),
	// -1 disables buffering (the paper's "Base" ablation).
	Nbatch int
	// THlog is the GC trigger ratio (log bytes / leaf bytes); 0 means
	// the default 0.20.
	THlog float64
	// GC selects the reclamation policy.
	GC GCPolicy
	// NaiveLogging logs trigger writes too (the "+BNode" ablation);
	// default is write-conservative logging.
	NaiveLogging bool
	// VarKV switches the tree to variable-size []byte keys and values
	// (PutVar/GetVar/...). Fixed 8 B operations are rejected.
	VarKV bool
	// ChunkBytes overrides the WAL chunk size (default 4 MB).
	ChunkBytes int
	// Metrics enables per-operation latency histograms, retrievable
	// via Tree.Metrics. Off by default (zero overhead when off).
	Metrics bool
	// LockedReads makes Get/Scan take each buffer node's version lock
	// instead of the default lock-free optimistic (seqlock) traversal,
	// and charges the modeled cacheline-handoff cost a shared lock word
	// incurs per peer session. It exists as the ablation baseline for
	// the read-scaling experiments; leave it off in normal use.
	LockedReads bool
	// Tracer, when non-nil, receives ring-buffer events from the tree
	// (inserts, flushes, splits, GC rounds, ...). Enable it with
	// Tracer.Enable; a disabled tracer costs one atomic load per event
	// site. Pair with Pool().SetDeviceTracer(tracer.DeviceHook()) to
	// interleave device-level eviction events.
	Tracer *obs.Tracer
	// Platform overrides the PM device model configuration; zero
	// fields take defaults (two sockets, 4 DIMMs each, 256 MB/socket).
	Platform pmem.Config
}

// Tree is a CCL-BTree instance. Operations are issued through
// per-goroutine Sessions.
type Tree struct {
	inner *core.Tree
	pool  *pmem.Pool
}

func (c Config) coreOptions() core.Options {
	return core.Options{
		Nbatch:       c.Nbatch,
		THlog:        c.THlog,
		GC:           c.GC,
		NaiveLogging: c.NaiveLogging,
		VarKV:        c.VarKV,
		ChunkBytes:   c.ChunkBytes,
		Metrics:      c.Metrics,
		Tracer:       c.Tracer,
		LockedReads:  c.LockedReads,
	}
}

// New creates a fresh tree on a new PM pool built from cfg.Platform.
func New(cfg Config) (*Tree, error) {
	pool := pmem.NewPool(cfg.Platform)
	return NewOnPool(pool, cfg)
}

// NewOnPool creates a fresh tree on an existing pool (e.g. one shared
// with a benchmark harness).
func NewOnPool(pool *pmem.Pool, cfg Config) (*Tree, error) {
	tr, err := core.New(pool, cfg.coreOptions())
	if err != nil {
		return nil, fmt.Errorf("cclbtree: %w", err)
	}
	return &Tree{inner: tr, pool: pool}, nil
}

// Open recovers a tree previously created on pool, after a crash
// (Pool.Crash) or a restart (Pool.LoadPersistent). It walks the
// persistent leaf list, replays the write-ahead logs, and resets leaf
// timestamps, per §3.3 of the paper.
func Open(pool *pmem.Pool, cfg Config) (*Tree, error) {
	t, _, err := OpenWithStats(pool, cfg, 1)
	return t, err
}

// RecoveryStats describes a recovery run.
type RecoveryStats = core.RecoveryStats

// OpenWithStats is Open with parallel recovery and statistics (Fig 17).
func OpenWithStats(pool *pmem.Pool, cfg Config, threads int) (*Tree, *RecoveryStats, error) {
	tr, st, err := core.Open(pool, cfg.coreOptions(), threads)
	if err != nil {
		return nil, nil, fmt.Errorf("cclbtree: %w", err)
	}
	return &Tree{inner: tr, pool: pool}, st, nil
}

// Pool returns the underlying PM pool (stats, crash injection,
// persistence to disk).
func (t *Tree) Pool() *pmem.Pool { return t.pool }

// Core exposes the internal tree.
//
// Deprecated: every capability the harnesses needed is now on the
// public surface (Counters, ForceGC, StartGCAsync, WaitGC,
// PeakLogBytes, Session.PutIndirect, ...). Core remains only for
// out-of-tree experiments that poke internals directly and will be
// removed once none are left.
func (t *Tree) Core() *core.Tree { return t.inner }

// StartGCAsync launches one log-reclamation round in the background
// (Fig 14's explicit trigger) and returns immediately.
func (t *Tree) StartGCAsync() { t.inner.StartGCAsync() }

// WaitGC blocks until the in-flight GC round, if any, completes.
func (t *Tree) WaitGC() { t.inner.WaitGC() }

// PeakLogBytes reports the largest live WAL volume observed (Table 2's
// "peak log size").
func (t *Tree) PeakLogBytes() int64 { return t.inner.PeakLogBytes() }

// Counters returns the tree's behavioral statistics.
func (t *Tree) Counters() core.Counters { return t.inner.Counters() }

// Metrics returns the tree's behavioral counters plus, when
// Config.Metrics is on, aggregated per-operation latency histograms.
func (t *Tree) Metrics() core.TreeMetrics { return t.inner.Metrics() }

// Observe snapshots the pool's device counters flattened for display or
// JSON export, including the per-scope media-byte attribution.
func (t *Tree) Observe() obs.Observation { return obs.Observe(t.pool) }

// Profile snapshots the contention/heat tier: per-class lock statistics,
// per-segment critical-path latency attribution, and the hottest leaves.
// All slices are empty unless Config.Metrics is on.
func (t *Tree) Profile() obs.Profile { return t.inner.Profile() }

// MemoryUsage returns modeled DRAM bytes and PM bytes in use.
func (t *Tree) MemoryUsage() (dramBytes, pmBytes int64) { return t.inner.MemoryUsage() }

// ForceGC runs a log-reclamation round synchronously.
func (t *Tree) ForceGC() { t.inner.ForceGC() }

// Close stops the tree's background garbage collection. Call it before
// Pool.Crash (a real power failure halts every thread at once) or when
// abandoning the tree; the tree must not be used afterwards.
func (t *Tree) Close() { t.inner.Freeze() }

// Session is a per-goroutine handle. Create one per worker goroutine
// with Tree.Session; it owns the thread's write-ahead log and NUMA
// binding and must not be shared.
type Session struct {
	w *core.Worker
}

// Session creates an operation handle bound to a NUMA socket.
func (t *Tree) Session(socket int) *Session {
	return &Session{w: t.inner.NewWorker(socket)}
}

// Thread exposes the session's PM thread (virtual clock and tag).
func (s *Session) Thread() *pmem.Thread { return s.w.Thread() }

// Put inserts or updates a fixed 8 B pair. Key must be nonzero and
// value nonzero (zero is the paper's tombstone sentinel).
func (s *Session) Put(key, value uint64) error { return s.w.Upsert(key, value) }

// Get returns the value for key. Reads are lock-free: the session
// traverses version-stamped nodes optimistically and retries on a
// concurrent writer's version change, never blocking it (seqlock
// discipline; see Counters.ReadRetries).
func (s *Session) Get(key uint64) (uint64, bool) { return s.w.Lookup(key) }

// Delete removes key (tombstone insertion; space is reclaimed when the
// tombstone reaches the leaf).
func (s *Session) Delete(key uint64) error { return s.w.Delete(key) }

// KV is a fixed-size scan result.
type KV = core.KV

// Scan fills out with up to len(out) live entries with key ≥ start in
// ascending order and returns the count. Like Get, Scan is lock-free:
// each node is snapshotted optimistically and re-validated, and leaves
// unlinked by a concurrent merge stay readable until every in-flight
// read has finished (epoch-based reclamation).
func (s *Session) Scan(start uint64, out []KV) int {
	return s.w.Scan(start, len(out), out)
}

// PutVar inserts or updates a variable-size pair (requires VarKV).
func (s *Session) PutVar(key, value []byte) error { return s.w.UpsertVar(key, value) }

// GetVar returns the value for a variable-size key.
func (s *Session) GetVar(key []byte) ([]byte, bool) { return s.w.LookupVar(key) }

// DeleteVar removes a variable-size key.
func (s *Session) DeleteVar(key []byte) error { return s.w.DeleteVar(key) }

// KVBytes is a variable-size scan result.
type KVBytes = core.KVBytes

// ScanVar returns up to max live entries with key ≥ start in ascending
// byte order.
func (s *Session) ScanVar(start []byte, max int) []KVBytes { return s.w.ScanVar(start, max) }

// PutLargeValue stores an 8 B key with an out-of-band value blob
// through an indirection pointer (§4.4), for values larger than 8 B.
func (s *Session) PutLargeValue(key uint64, value []byte) error {
	return s.w.UpsertLargeValue(key, value)
}

// GetLargeValue fetches a value stored with PutLargeValue (or Put).
func (s *Session) GetLargeValue(key uint64) ([]byte, bool) {
	return s.w.LookupLargeValue(key)
}

// PutIndirect stores a fixed 8 B key with a pre-built indirection
// pointer word (IsIndirect must hold). Harnesses that manage their own
// value blobs use this to drive every index through one code path.
func (s *Session) PutIndirect(key, pointerWord uint64) error {
	return s.w.UpsertIndirect(key, pointerWord)
}

// IsIndirect reports whether a value word is an indirection pointer to
// an out-of-band blob rather than an inline 8 B value.
func IsIndirect(word uint64) bool { return core.IsBlobWord(word) }
