package cclbtree

import (
	"fmt"
	"sync"
	"testing"

	"cclbtree/internal/pmem"
)

// TestPublicConcurrentSessions exercises the documented usage pattern:
// one Session per goroutine, mixed operations, then a consistency
// check and a crash/recovery of the same pool.
func TestPublicConcurrentSessions(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const readers = 2
	const per = 3000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.Session(g % db.Pool().Sockets())
			base := uint64(g*per + 1)
			for i := uint64(0); i < per; i++ {
				if err := s.Put(base+i, base+i+7); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					if err := s.Delete(base + i); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.Session(g % db.Pool().Sockets())
			out := make([]KV, 32)
			for i := 0; i < 4000; i++ {
				k := uint64(i%(writers*per) + 1)
				if v, ok := s.Get(k); ok && v != k+7 {
					t.Errorf("torn read: key %d = %d", k, v)
					return
				}
				if i%50 == 0 {
					n := s.Scan(k, out)
					for j := 1; j < n; j++ {
						if out[j].Key <= out[j-1].Key {
							t.Error("scan disorder under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	verify := func(s *Session, label string) {
		for g := 0; g < writers; g++ {
			base := uint64(g*per + 1)
			for i := uint64(0); i < per; i++ {
				v, ok := s.Get(base + i)
				deleted := i%5 == 0
				if deleted && ok {
					t.Fatalf("%s: deleted key %d present", label, base+i)
				}
				if !deleted && (!ok || v != base+i+7) {
					t.Fatalf("%s: key %d = %d,%v", label, base+i, v, ok)
				}
			}
		}
	}
	verify(db.Session(0), "pre-crash")

	db.Close()
	db.Pool().Crash()
	db2, err := Open(db.Pool(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verify(db2.Session(0), "post-crash")
}

// TestPublicErrorMessages pins the API contract errors.
func TestPublicErrorMessages(t *testing.T) {
	db, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	cases := []struct {
		err  error
		want string
	}{
		{s.Put(0, 1), "key"},
		{s.Put(1, 0), "tombstone"},
		{s.Put(1, 1<<63), "MaxValue"},
		{s.PutVar([]byte("k"), []byte("v")), "VarKV"},
	}
	for i, c := range cases {
		if c.err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		if !containsFold(c.err.Error(), c.want) {
			t.Fatalf("case %d: error %q lacks %q", i, c.err, c.want)
		}
	}
}

func containsFold(s, sub string) bool {
	return len(sub) == 0 || len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestOpenMismatchedPool pins Open's behavior on a pool without a tree.
func TestOpenMismatchedPool(t *testing.T) {
	pool := pmem.NewPool(pmem.Config{Sockets: 1, DeviceBytes: 1 << 20})
	if _, err := Open(pool, Config{}); err == nil {
		t.Fatal("Open on a treeless pool succeeded")
	} else if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
}
