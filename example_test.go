package cclbtree_test

import (
	"fmt"

	"cclbtree"
	"cclbtree/internal/pmem"
)

func smallPlatform() pmem.Config {
	return pmem.Config{Sockets: 2, DIMMsPerSocket: 2, DeviceBytes: 32 << 20}
}

// The basic write/read/scan flow.
func Example() {
	db, _ := cclbtree.New(cclbtree.Config{Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 5; i++ {
		_ = s.Put(i*10, i*100)
	}
	v, ok := s.Get(30)
	fmt.Println(v, ok)

	out := make([]cclbtree.KV, 3)
	n := s.Scan(20, out)
	for _, kv := range out[:n] {
		fmt.Println(kv.Key, kv.Value)
	}
	// Output:
	// 300 true
	// 20 200
	// 30 300
	// 40 400
}

// Surviving a power failure: everything a completed Put wrote is
// recovered by Open.
func ExampleOpen() {
	db, _ := cclbtree.New(cclbtree.Config{Platform: smallPlatform()})
	s := db.Session(0)
	_ = s.Put(7, 700)
	db.Close()

	db.Pool().Crash() // power failure

	db2, _ := cclbtree.Open(db.Pool(), cclbtree.Config{})
	defer db2.Close()
	v, ok := db2.Session(0).Get(7)
	fmt.Println(v, ok)
	// Output: 700 true
}

// Variable-size keys and values through indirection pointers (§4.4 of
// the paper).
func ExampleConfig_varKV() {
	db, _ := cclbtree.New(cclbtree.Config{VarKV: true, Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	_ = s.PutVar([]byte("user:alice"), []byte(`{"role":"admin"}`))
	_ = s.PutVar([]byte("user:bob"), []byte(`{"role":"dev"}`))
	for _, kv := range s.ScanVar([]byte("user:"), 10) {
		fmt.Printf("%s -> %s\n", kv.Key, kv.Value)
	}
	// Output:
	// user:alice -> {"role":"admin"}
	// user:bob -> {"role":"dev"}
}

// Group commit: stage a batch of writes and apply them with a single
// WAL fence. Ops landing on the same leaf also share one buffer-flush,
// which is where the batch path's write-amplification win comes from.
func ExampleSession_Apply() {
	db, _ := cclbtree.New(cclbtree.Config{Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)

	var b cclbtree.Batch
	b.Put(10, 100).Put(20, 200).Put(30, 300).Delete(20)
	if err := s.Apply(&b); err != nil {
		fmt.Println(err)
	}
	b.Reset() // the batch is reusable after Apply

	v, ok := s.Get(10)
	fmt.Println(v, ok)
	_, ok = s.Get(20)
	fmt.Println(ok)
	fmt.Println(db.Counters().BatchApplies)
	// Output:
	// 100 true
	// false
	// 1
}

// Ascending iteration with a Go 1.23 range-over-func loop. Breaking
// out early is cheap: nothing is held between pages.
func ExampleSession_Range() {
	db, _ := cclbtree.New(cclbtree.Config{Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 100; i++ {
		_ = s.Put(i, i*i)
	}
	for k, v := range s.Range(97) {
		if k > 99 {
			break
		}
		fmt.Println(k, v)
	}
	// Output:
	// 97 9409
	// 98 9604
	// 99 9801
}

// Iterating variable-size entries in byte order (requires
// Config.VarKV). A nil start begins at the smallest key.
func ExampleSession_RangeVar() {
	db, _ := cclbtree.New(cclbtree.Config{VarKV: true, Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	_ = s.PutVar([]byte("b"), []byte("bee"))
	_ = s.PutVar([]byte("a"), []byte("ay"))
	_ = s.PutVar([]byte("c"), []byte("sea"))
	for k, v := range s.RangeVar(nil) {
		fmt.Printf("%s=%s\n", k, v)
	}
	// Output:
	// a=ay
	// b=bee
	// c=sea
}

// Reading the write-amplification counters the paper is about.
func ExampleTree_counters() {
	db, _ := cclbtree.New(cclbtree.Config{Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 3000; i++ {
		_ = s.Put(i, i)
	}
	db.Pool().DrainXPBuffers()
	st := db.Pool().Stats()
	c := db.Counters()
	fmt.Println(st.MediaWriteBytes > 0, c.TriggerWrites > 0, c.LoggedWrites > c.TriggerWrites)
	// Output: true true true
}

// A sharded DB: one CCL-BTree per shard, NUMA-pinned round-robin, with
// every operation routed by key hash. Shards=1 (or 0) is today's
// single-tree behaviour.
func ExampleDB() {
	db, _ := cclbtree.New(cclbtree.Config{Shards: 4, Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 1000; i++ {
		_ = s.Put(i, i*2)
	}
	v, ok := s.Get(700)
	fmt.Println(db.Shards(), v, ok)
	// Routing is stable: the same key always lands on the same shard.
	fmt.Println(db.ShardFor(700) == db.ShardFor(700))
	// Output:
	// 4 1400 true
	// true
}

// Range over a sharded DB merges the per-shard streams into one
// ordered iterator: hash routing scatters consecutive keys across
// shards, and the merge puts them back in global key order.
func ExampleDB_range() {
	db, _ := cclbtree.New(cclbtree.Config{Shards: 4, Platform: smallPlatform()})
	defer db.Close()
	s := db.Session(0)
	for i := uint64(1); i <= 500; i++ {
		_ = s.Put(i, i)
	}
	n, prev := 0, uint64(0)
	for k := range s.Range(1) {
		if k <= prev {
			fmt.Println("out of order!")
		}
		prev = k
		n++
	}
	fmt.Println(n, prev)
	// Output: 500 500
}
