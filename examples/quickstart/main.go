// Quickstart: create a CCL-BTree, write and read some pairs, inspect
// the hardware counters that make this library interesting, and survive
// a power failure.
package main

import (
	"fmt"
	"log"

	"cclbtree"
)

func main() {
	// A tree on the default modeled platform: two sockets, four
	// Optane-like DIMMs each, ADR persistence semantics.
	db, err := cclbtree.New(cclbtree.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Sessions are per-goroutine handles; each owns a per-thread
	// write-ahead log bound to its NUMA socket, as in the paper.
	s := db.Session(0)

	for i := uint64(1); i <= 100_000; i++ {
		if err := s.Put(i, i*10); err != nil {
			log.Fatal(err)
		}
	}
	if v, ok := s.Get(42); ok {
		fmt.Printf("key 42 -> %d\n", v)
	}

	// Range query: ordered, despite unsorted leaf internals.
	out := make([]cclbtree.KV, 5)
	n := s.Scan(1000, out)
	fmt.Printf("scan from 1000: %v\n", out[:n])

	// The write-amplification counters the paper is about (ipmctl-style).
	db.Pool().DrainXPBuffers()
	st := db.Pool().Stats()
	fmt.Printf("CLI-amplification: %.1f\n", st.CLIAmplification())
	fmt.Printf("XBI-amplification: %.1f\n", st.XBIAmplification())
	c := db.Counters()
	fmt.Printf("trigger writes: %d (unlogged), WAL appends: %d\n",
		c.TriggerWrites, c.LoggedWrites)

	// Power failure and recovery (§3.3): every completed Put survives.
	db.Close()
	db.Pool().Crash()
	db2, err := cclbtree.Open(db.Pool(), cclbtree.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	if v, ok := db2.Session(0).Get(42); ok {
		fmt.Printf("after crash, key 42 -> %d\n", v)
	} else {
		log.Fatal("key lost in crash!")
	}
}
