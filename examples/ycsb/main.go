// ycsb: drive a CCL-BTree with YCSB-style workload mixes at a chosen
// thread count and report simulated throughput plus the PM hardware
// counters — a miniature of the paper's Fig 11.
//
//	go run ./examples/ycsb -workload insert-intensive -threads 24
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"cclbtree"
	"cclbtree/internal/workload"
)

func main() {
	wl := flag.String("workload", "insert-intensive",
		"insert-only | insert-intensive | read-intensive | read-only | scan-insert")
	threads := flag.Int("threads", 24, "worker goroutines (simulated threads)")
	warm := flag.Int("warm", 100_000, "keys loaded before measuring")
	ops := flag.Int("ops", 100_000, "measured operations")
	zipf := flag.Float64("zipf", 0, "Zipfian skew for reads (0 = uniform)")
	flag.Parse()

	mixes := map[string]workload.Mix{
		"insert-only":      workload.MixInsertOnly,
		"insert-intensive": workload.MixInsertIntensive,
		"read-intensive":   workload.MixReadIntensive,
		"read-only":        workload.MixReadOnly,
		"scan-insert":      workload.MixScanInsert,
	}
	mix, ok := mixes[*wl]
	if !ok {
		log.Fatalf("unknown workload %q", *wl)
	}
	if mix.ScanLen == 0 {
		mix.ScanLen = 100
	}

	db, err := cclbtree.New(cclbtree.Config{ChunkBytes: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	pool := db.Pool()

	key := func(i int) uint64 {
		x := uint64(i + 1)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x&(1<<62-1) | 1
	}

	sessions := make([]*cclbtree.Session, *threads)
	for i := range sessions {
		sessions[i] = db.Session(i % pool.Sockets())
	}

	// Load.
	var wg sync.WaitGroup
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			s := sessions[t]
			for i := t; i < *warm; i += *threads {
				if err := s.Put(key(i), uint64(i)+1); err != nil {
					log.Fatal(err)
				}
			}
		}(t)
	}
	wg.Wait()

	// Measure.
	start := make([]int64, *threads)
	for t, s := range sessions {
		start[t] = s.Thread().Now()
	}
	pool.ResetStats()
	perThread := *ops / *threads
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			s := sessions[t]
			rng := rand.New(rand.NewSource(int64(t + 1)))
			var access workload.Access = workload.Uniform{N: uint64(*warm)}
			if *zipf > 0 {
				access = workload.NewZipf(uint64(*warm), *zipf)
			}
			scanOut := make([]cclbtree.KV, mix.ScanLen)
			cursor := *warm + t
			for i := 0; i < perThread; i++ {
				switch mix.Pick(rng) {
				case workload.OpInsert:
					_ = s.Put(key(cursor), uint64(cursor))
					cursor += *threads
				case workload.OpRead:
					_, _ = s.Get(access.Next(rng))
				case workload.OpUpdate:
					_ = s.Put(access.Next(rng), rng.Uint64()|1)
				case workload.OpScan:
					_ = s.Scan(access.Next(rng), scanOut)
				case workload.OpDelete:
					_ = s.Delete(access.Next(rng))
				}
			}
		}(t)
	}
	wg.Wait()

	var elapsed int64
	for t, s := range sessions {
		if d := s.Thread().Now() - start[t]; d > elapsed {
			elapsed = d
		}
	}
	pool.DrainXPBuffers()
	st := pool.Stats()
	total := perThread * *threads
	fmt.Printf("workload      %s (%d threads, %d warm, %d ops)\n", *wl, *threads, *warm, total)
	fmt.Printf("throughput    %.2f Mop/s (simulated)\n", float64(total)*1e3/float64(elapsed))
	fmt.Printf("media write   %.1f MB   media read %.1f MB\n",
		float64(st.MediaWriteBytes)/1e6, float64(st.MediaReadBytes)/1e6)
	c := db.Counters()
	fmt.Printf("buffer hits   %d of %d lookups\n", c.BufferHits, c.Lookups)
	fmt.Printf("GC runs       %d (copied %d entries)\n", c.GCRuns, c.GCCopiedEntries)
}
