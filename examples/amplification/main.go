// amplification: measure the CLI- and XBI-amplification of YOUR access
// pattern on CCL-BTree versus a flush-per-insert baseline — the
// paper's §2 motivation experiment as a tool.
//
//	go run ./examples/amplification -pattern random
//	go run ./examples/amplification -pattern sequential
//	go run ./examples/amplification -pattern zipf
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"cclbtree"
	"cclbtree/internal/workload"
)

func main() {
	pattern := flag.String("pattern", "random", "random | sequential | zipf")
	n := flag.Int("n", 200_000, "operations")
	flag.Parse()

	type variant struct {
		name string
		cfg  cclbtree.Config
	}
	variants := []variant{
		{"no buffering (Base)", cclbtree.Config{Nbatch: -1, GC: cclbtree.GCOff}},
		{"CCL-BTree (Nbatch=2)", cclbtree.Config{ChunkBytes: 256 << 10}},
		{"CCL-BTree (Nbatch=4)", cclbtree.Config{Nbatch: 4, ChunkBytes: 256 << 10}},
	}

	fmt.Printf("%-22s %10s %10s %12s   %s\n", "variant", "CLI-amp", "XBI-amp", "media MB", "media by scope")
	for _, v := range variants {
		db, err := cclbtree.New(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		s := db.Session(0)
		rng := rand.New(rand.NewSource(7))
		zipf := workload.NewZipf(uint64(*n), 0.9)
		key := func(i int) uint64 {
			switch *pattern {
			case "sequential":
				return uint64(i + 1)
			case "zipf":
				return zipf.Next(rng)
			default:
				return rng.Uint64()&(1<<40-1) | 1
			}
		}
		// Warm half, measure half.
		for i := 0; i < *n/2; i++ {
			if err := s.Put(key(i), 7); err != nil {
				log.Fatal(err)
			}
		}
		db.Pool().ResetStats()
		for i := *n / 2; i < *n; i++ {
			if err := s.Put(key(i), 9); err != nil {
				log.Fatal(err)
			}
		}
		db.Pool().DrainXPBuffers()
		st := db.Pool().Stats()
		// The Session.Put path declares its payload via AddUserBytes, so
		// the Stats helpers compute both amplification factors; the
		// per-scope breakdown shows *which component* wrote the media
		// bytes (leaf buffers vs WAL appends vs splits vs GC).
		fmt.Printf("%-22s %10.2f %10.2f %12.2f   %v\n",
			v.name,
			st.CLIAmplification(),
			st.AmplificationFactor(),
			float64(st.MediaWriteBytes)/1e6,
			st.ScopeMediaBytes())
		db.Close()
	}
	fmt.Println("\nXBI-amp = media bytes per user byte; lower is better (paper §2.1).")
	fmt.Println("The by-scope map attributes media bytes to the causing component:")
	fmt.Println("buffered inserts turn random leaf flushes (leafbuf) into sequential")
	fmt.Println("wal bytes, which is precisely the trade the paper's §3.2 makes.")
}
