// kvstore: an embedded key-value store with variable-size keys and
// values, concurrent writers, and durable state carried across process
// restarts through a persistent-memory image file.
//
// Run once to create ./kvstore.pm, again to reopen it:
//
//	go run ./examples/kvstore          # creates and populates
//	go run ./examples/kvstore          # recovers and verifies
//	go run ./examples/kvstore -reset   # start over
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"cclbtree"
	"cclbtree/internal/pmem"
)

const imageFile = "kvstore.pm"

func platform() pmem.Config {
	return pmem.Config{
		Sockets:        2,
		DIMMsPerSocket: 2,
		DeviceBytes:    32 << 20, // keep the image file small
	}
}

func main() {
	reset := flag.Bool("reset", false, "delete the store and start over")
	flag.Parse()
	if *reset {
		_ = os.Remove(imageFile)
	}

	pool := pmem.NewPool(platform())
	cfg := cclbtree.Config{VarKV: true, ChunkBytes: 64 << 10}

	var db *cclbtree.DB
	if f, err := os.Open(imageFile); err == nil {
		// Restart path: load the persistent image and recover.
		for s := 0; s < pool.Sockets(); s++ {
			if err := pool.LoadPersistent(s, f); err != nil {
				log.Fatalf("load image: %v", err)
			}
		}
		f.Close()
		db, err = cclbtree.Open(pool, cfg)
		if err != nil {
			log.Fatalf("recover: %v", err)
		}
		fmt.Println("recovered existing store")
	} else {
		var err error
		db, err = cclbtree.NewOnPool(pool, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("created new store")
	}

	// Concurrent writers, one session per goroutine.
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session(w % pool.Sockets())
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("user:%04d:%04d", w, i)
				v := fmt.Sprintf(`{"writer":%d,"seq":%d}`, w, i)
				if err := s.PutVar([]byte(k), []byte(v)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify with a point read and an ordered prefix scan.
	s := db.Session(0)
	if v, ok := s.GetVar([]byte("user:0002:0999")); ok {
		fmt.Printf("point read: %s\n", v)
	}
	res := s.ScanVar([]byte("user:0001:"), 3)
	for _, kv := range res {
		fmt.Printf("scan: %s -> %s\n", kv.Key, kv.Value)
	}

	// Persist the crash-consistent image to disk, standing in for a
	// DAX-mapped pool file surviving the process.
	db.Close()
	f, err := os.Create(imageFile)
	if err != nil {
		log.Fatal(err)
	}
	for sck := 0; sck < pool.Sockets(); sck++ {
		if err := pool.SavePersistent(sck, f); err != nil {
			log.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved image to %s — run again to recover it\n", imageFile)
}
